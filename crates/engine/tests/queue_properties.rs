//! Property-based tests of the [`ActivationQueue`]: under arbitrary
//! interleavings of `push` / `push_batch` / `try_push` / `try_pop_batch` /
//! `close`, no tuple is ever lost or duplicated, and the lock-free
//! observation mirrors (`len` / `is_empty` / `is_closed` / `is_exhausted`
//! and the enqueue/dequeue totals) always agree with the data that actually
//! moved.
//!
//! Two complementary properties:
//!
//! * a **sequential model check** drives one queue and an exact in-memory
//!   model through a random operation script (including mid-script closes)
//!   and asserts every observable — popped values, lengths, closed state,
//!   totals — matches the model after every step;
//! * a **concurrent interleaving check** runs random multi-producer scripts
//!   against racing consumers and asserts the multiset of consumed tuples
//!   equals the multiset of successfully pushed ones, with monotone totals.

use dbs3_engine::{Activation, ActivationQueue, TryPushError, TupleBatch};
use dbs3_storage::tuple::int_tuple;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread;

/// Builds a data activation carrying `count` tuples with ascending payloads
/// starting at `base`.
fn batch_of(base: i64, count: usize) -> Activation {
    Activation::Data(TupleBatch::from(
        (0..count as i64)
            .map(|i| int_tuple(&[base + i]))
            .collect::<Vec<_>>(),
    ))
}

/// Flattens popped activations into their tuple payloads.
fn payloads(batch: &[Activation]) -> Vec<i64> {
    batch
        .iter()
        .flat_map(|a| a.batch().expect("data only").iter())
        .map(|t| t.value(0).as_int().unwrap())
        .collect()
}

/// Observable form of one queue entry, shared by the queue side and the
/// model side so popped sequences compare exactly (kind included).
#[derive(Debug, Clone, PartialEq)]
enum Entry {
    /// A control activation (trigger or whole-fragment/morsel range);
    /// weighs one queue unit whatever range it covers.
    Control(&'static str),
    /// A data activation; weighs one unit per tuple.
    Data(Vec<i64>),
}

impl Entry {
    fn weight(&self) -> usize {
        match self {
            Entry::Control(_) => 1,
            Entry::Data(v) => v.len(),
        }
    }
}

/// Renders popped activations into comparable entries.
fn render(batch: &[Activation]) -> Vec<Entry> {
    batch
        .iter()
        .map(|a| match a {
            Activation::Trigger => Entry::Control("trigger"),
            Activation::Morsel { .. } => Entry::Control("morsel"),
            Activation::Data(b) => Entry::Data(
                b.iter()
                    .map(|t| t.value(0).as_int().unwrap())
                    .collect::<Vec<_>>(),
            ),
        })
        .collect()
}

/// An exact reference model of the queue: activation entries with the same
/// queue-weight accounting, overfill, at-least-one-per-pop,
/// one-control-per-pop and close semantics.
#[derive(Default)]
struct Model {
    buffer: VecDeque<Entry>,
    closed: bool,
    enqueued: u64,
    dequeued: u64,
}

impl Model {
    fn len(&self) -> usize {
        self.buffer.iter().map(Entry::weight).sum()
    }

    /// Mirrors `try_pop_batch(max_weight)`: pops whole activations while
    /// the accumulated queue weight stays within budget (the first always
    /// comes out), and a popped control activation ends the pop — they are
    /// claimed one at a time.
    fn pop(&mut self, max_weight: usize) -> Vec<Entry> {
        let mut out = Vec::new();
        let mut popped = 0usize;
        while let Some(front) = self.buffer.front() {
            let weight = front.weight();
            if !out.is_empty() && popped + weight > max_weight {
                break;
            }
            let entry = self.buffer.pop_front().expect("front exists");
            popped += weight;
            let control = matches!(entry, Entry::Control(_));
            out.push(entry);
            if control || popped >= max_weight {
                break;
            }
        }
        self.dequeued += popped as u64;
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sequential model check over random op scripts. Ops are encoded as
    /// `(kind, size)`; blocking entry points (`push`, `push_batch`) are only
    /// issued when the model proves they cannot block or panic, exactly as
    /// the engine's producers do (they never push after closing).
    #[test]
    fn queue_matches_reference_model(
        ops in proptest::collection::vec((0u8..6, 1usize..8), 1..150),
        capacity in 1usize..24,
    ) {
        let q = ActivationQueue::new(0, capacity, 0.0);
        let mut model = Model::default();
        let mut next_payload = 0i64;
        for (kind, size) in ops {
            match kind {
                // try_push: always safe; refused on full/closed.
                0 => {
                    let result = q.try_push(batch_of(next_payload, size));
                    if model.closed {
                        prop_assert!(matches!(result, Err(TryPushError::Closed(_))));
                    } else if model.len() >= capacity {
                        prop_assert!(matches!(result, Err(TryPushError::Full(_))));
                    } else {
                        prop_assert!(result.is_ok());
                        model.buffer.push_back(Entry::Data((next_payload..next_payload + size as i64).collect()));
                        model.enqueued += size as u64;
                        next_payload += size as i64;
                    }
                }
                // push: blocking; issued only when it will be accepted
                // immediately (below capacity, not closed).
                1 if !model.closed && model.len() < capacity => {
                    q.push(batch_of(next_payload, size));
                    model.buffer.push_back(Entry::Data((next_payload..next_payload + size as i64).collect()));
                    model.enqueued += size as u64;
                    next_payload += size as i64;
                }
                // push_batch of singletons; issued only when the whole batch
                // fits (so no acquisition can block).
                2 if !model.closed && model.len() + size <= capacity => {
                    let singles: Vec<Activation> =
                        (0..size as i64).map(|i| Activation::single(int_tuple(&[next_payload + i]))).collect();
                    q.push_batch(singles);
                    for i in 0..size as i64 {
                        model.buffer.push_back(Entry::Data(vec![next_payload + i]));
                    }
                    model.enqueued += size as u64;
                    next_payload += size as i64;
                }
                // try_pop_batch with a random weight budget.
                3 => {
                    let got = render(&q.try_pop_batch(size));
                    let want = model.pop(size);
                    prop_assert_eq!(got, want, "pop diverged from the model");
                }
                // close (possibly mid-script, possibly repeated).
                4 => {
                    q.close();
                    model.closed = true;
                }
                // push of a control activation (trigger or a non-lead
                // morsel — both weigh one queue unit and end any pop that
                // claims them); issued only when it cannot block.
                5 if !model.closed && model.len() < capacity => {
                    let (activation, tag) = if size % 2 == 0 {
                        (Activation::Trigger, "trigger")
                    } else {
                        (Activation::Morsel { start: size, end: size * 2, lead: false }, "morsel")
                    };
                    q.push(activation);
                    model.buffer.push_back(Entry::Control(tag));
                    model.enqueued += 1;
                }
                _ => {} // guarded push variants that would block: skip.
            }
            // The lock-free observers agree with the model after every op.
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.len() == 0);
            prop_assert_eq!(q.is_closed(), model.closed);
            prop_assert_eq!(q.is_exhausted(), model.closed && model.len() == 0);
            prop_assert_eq!(q.total_enqueued(), model.enqueued);
            prop_assert_eq!(q.total_dequeued(), model.dequeued);
        }
        // Drain: everything enqueued comes back out exactly once. A pop
        // ends at each control activation, so drain in rounds.
        loop {
            let rest = render(&q.try_pop_batch(usize::MAX));
            let want = model.pop(usize::MAX);
            let drained = rest.is_empty();
            prop_assert_eq!(rest, want);
            if drained {
                break;
            }
        }
        prop_assert_eq!(q.total_dequeued(), q.total_enqueued());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent interleavings: random producer scripts (mixing blocking
    /// pushes, batch pushes and lossy try_pushes) race two consumers. The
    /// multiset of consumed payloads must equal the multiset of payloads
    /// whose push was *accepted* — nothing lost, nothing duplicated — and
    /// the totals must match exactly once the dust settles.
    #[test]
    fn concurrent_interleavings_lose_and_duplicate_nothing(
        scripts in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 1usize..6), 5..40),
            1..4,
        ),
        capacity in 2usize..32,
        budget in 1usize..12,
    ) {
        let q = Arc::new(ActivationQueue::new(0, capacity, 0.0));

        // Consumers: mix non-blocking batch pops with blocking pops until
        // the queue is closed and drained; collect every payload seen.
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut seen: Vec<i64> = Vec::new();
                    loop {
                        let batch = q.try_pop_batch(budget);
                        if batch.is_empty() {
                            // Fall back to a blocking pop: returns None only
                            // when the queue is exhausted.
                            match q.pop_blocking() {
                                Some(a) => seen.extend(payloads(std::slice::from_ref(&a))),
                                None => break,
                            }
                        } else {
                            seen.extend(payloads(&batch));
                        }
                        // Totals are monotone and never cross: reading the
                        // dequeue total first makes the comparison sound.
                        let deq = q.total_dequeued();
                        let enq = q.total_enqueued();
                        assert!(deq <= enq, "dequeued {deq} > enqueued {enq}");
                    }
                    seen
                })
            })
            .collect();

        // Producers: each runs its random script with a disjoint payload
        // namespace and reports which payloads were actually accepted.
        let producers: Vec<_> = scripts
            .into_iter()
            .enumerate()
            .map(|(p, script)| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut accepted: Vec<i64> = Vec::new();
                    let mut next = (p as i64 + 1) * 1_000_000;
                    for (kind, size) in script {
                        let base = next;
                        next += size as i64;
                        match kind {
                            // Blocking push of one batch: always accepted.
                            0 => {
                                q.push(batch_of(base, size));
                                accepted.extend(base..base + size as i64);
                            }
                            // push_batch of singletons: always accepted.
                            1 => {
                                let singles: Vec<Activation> = (0..size as i64)
                                    .map(|i| Activation::single(int_tuple(&[base + i])))
                                    .collect();
                                q.push_batch(singles);
                                accepted.extend(base..base + size as i64);
                            }
                            // try_push: accepted only if the queue had room.
                            _ => {
                                if q.try_push(batch_of(base, size)).is_ok() {
                                    accepted.extend(base..base + size as i64);
                                }
                            }
                        }
                    }
                    accepted
                })
            })
            .collect();

        let mut pushed: Vec<i64> = Vec::new();
        for producer in producers {
            pushed.extend(producer.join().unwrap());
        }
        q.close();
        let mut consumed: Vec<i64> = Vec::new();
        for consumer in consumers {
            consumed.extend(consumer.join().unwrap());
        }

        pushed.sort_unstable();
        consumed.sort_unstable();
        prop_assert_eq!(
            consumed, pushed,
            "consumed multiset differs from accepted-push multiset"
        );
        prop_assert_eq!(q.total_enqueued(), q.total_dequeued());
        prop_assert!(q.is_exhausted());
    }
}
