//! Property-based tests of the [`ActivationQueue`]: under arbitrary
//! interleavings of `push` / `push_batch` / `try_push` / `try_pop_batch` /
//! `close`, no tuple is ever lost or duplicated, and the lock-free
//! observation mirrors (`len` / `is_empty` / `is_closed` / `is_exhausted`
//! and the enqueue/dequeue totals) always agree with the data that actually
//! moved.
//!
//! Two complementary properties:
//!
//! * a **sequential model check** drives one queue and an exact in-memory
//!   model through a random operation script (including mid-script closes)
//!   and asserts every observable — popped values, lengths, closed state,
//!   totals — matches the model after every step;
//! * a **concurrent interleaving check** runs random multi-producer scripts
//!   against racing consumers and asserts the multiset of consumed tuples
//!   equals the multiset of successfully pushed ones, with monotone totals.

use dbs3_engine::{Activation, ActivationQueue, TryPushError, TupleBatch};
use dbs3_storage::tuple::int_tuple;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread;

/// Builds a data activation carrying `count` tuples with ascending payloads
/// starting at `base`.
fn batch_of(base: i64, count: usize) -> Activation {
    Activation::Data(TupleBatch::from(
        (0..count as i64)
            .map(|i| int_tuple(&[base + i]))
            .collect::<Vec<_>>(),
    ))
}

/// Flattens popped activations into their tuple payloads.
fn payloads(batch: &[Activation]) -> Vec<i64> {
    batch
        .iter()
        .flat_map(|a| a.batch().expect("data only").iter())
        .map(|t| t.value(0).as_int().unwrap())
        .collect()
}

/// An exact reference model of the queue: activation batches with the same
/// overfill, at-least-one-per-pop and close semantics.
#[derive(Default)]
struct Model {
    buffer: VecDeque<Vec<i64>>,
    closed: bool,
    enqueued: u64,
    dequeued: u64,
}

impl Model {
    fn len(&self) -> usize {
        self.buffer.iter().map(Vec::len).sum()
    }

    /// Mirrors `try_pop_batch(max_logical)`.
    fn pop(&mut self, max_logical: usize) -> Vec<i64> {
        let mut out = Vec::new();
        let mut popped = 0usize;
        while let Some(front) = self.buffer.front() {
            let logical = front.len();
            if !out.is_empty() && popped + logical > max_logical {
                break;
            }
            let batch = self.buffer.pop_front().expect("front exists");
            popped += batch.len();
            out.extend(batch);
            if popped >= max_logical {
                break;
            }
        }
        self.dequeued += popped as u64;
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sequential model check over random op scripts. Ops are encoded as
    /// `(kind, size)`; blocking entry points (`push`, `push_batch`) are only
    /// issued when the model proves they cannot block or panic, exactly as
    /// the engine's producers do (they never push after closing).
    #[test]
    fn queue_matches_reference_model(
        ops in proptest::collection::vec((0u8..6, 1usize..8), 1..150),
        capacity in 1usize..24,
    ) {
        let q = ActivationQueue::new(0, capacity, 0.0);
        let mut model = Model::default();
        let mut next_payload = 0i64;
        for (kind, size) in ops {
            match kind {
                // try_push: always safe; refused on full/closed.
                0 => {
                    let result = q.try_push(batch_of(next_payload, size));
                    if model.closed {
                        prop_assert!(matches!(result, Err(TryPushError::Closed(_))));
                    } else if model.len() >= capacity {
                        prop_assert!(matches!(result, Err(TryPushError::Full(_))));
                    } else {
                        prop_assert!(result.is_ok());
                        model.buffer.push_back((next_payload..next_payload + size as i64).collect());
                        model.enqueued += size as u64;
                        next_payload += size as i64;
                    }
                }
                // push: blocking; issued only when it will be accepted
                // immediately (below capacity, not closed).
                1 if !model.closed && model.len() < capacity => {
                    q.push(batch_of(next_payload, size));
                    model.buffer.push_back((next_payload..next_payload + size as i64).collect());
                    model.enqueued += size as u64;
                    next_payload += size as i64;
                }
                // push_batch of singletons; issued only when the whole batch
                // fits (so no acquisition can block).
                2 if !model.closed && model.len() + size <= capacity => {
                    let singles: Vec<Activation> =
                        (0..size as i64).map(|i| Activation::single(int_tuple(&[next_payload + i]))).collect();
                    q.push_batch(singles);
                    for i in 0..size as i64 {
                        model.buffer.push_back(vec![next_payload + i]);
                    }
                    model.enqueued += size as u64;
                    next_payload += size as i64;
                }
                // try_pop_batch with a random logical budget.
                3 => {
                    let got = payloads(&q.try_pop_batch(size));
                    let want = model.pop(size);
                    prop_assert_eq!(got, want, "pop diverged from the model");
                }
                // close (possibly mid-script, possibly repeated).
                4 => {
                    q.close();
                    model.closed = true;
                }
                _ => {} // guarded push variants that would block: skip.
            }
            // The lock-free observers agree with the model after every op.
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.len() == 0);
            prop_assert_eq!(q.is_closed(), model.closed);
            prop_assert_eq!(q.is_exhausted(), model.closed && model.len() == 0);
            prop_assert_eq!(q.total_enqueued(), model.enqueued);
            prop_assert_eq!(q.total_dequeued(), model.dequeued);
        }
        // Drain: everything enqueued comes back out exactly once.
        let rest = payloads(&q.try_pop_batch(usize::MAX));
        prop_assert_eq!(rest, model.pop(usize::MAX));
        prop_assert_eq!(q.total_dequeued(), q.total_enqueued());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent interleavings: random producer scripts (mixing blocking
    /// pushes, batch pushes and lossy try_pushes) race two consumers. The
    /// multiset of consumed payloads must equal the multiset of payloads
    /// whose push was *accepted* — nothing lost, nothing duplicated — and
    /// the totals must match exactly once the dust settles.
    #[test]
    fn concurrent_interleavings_lose_and_duplicate_nothing(
        scripts in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 1usize..6), 5..40),
            1..4,
        ),
        capacity in 2usize..32,
        budget in 1usize..12,
    ) {
        let q = Arc::new(ActivationQueue::new(0, capacity, 0.0));

        // Consumers: mix non-blocking batch pops with blocking pops until
        // the queue is closed and drained; collect every payload seen.
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut seen: Vec<i64> = Vec::new();
                    loop {
                        let batch = q.try_pop_batch(budget);
                        if batch.is_empty() {
                            // Fall back to a blocking pop: returns None only
                            // when the queue is exhausted.
                            match q.pop_blocking() {
                                Some(a) => seen.extend(payloads(std::slice::from_ref(&a))),
                                None => break,
                            }
                        } else {
                            seen.extend(payloads(&batch));
                        }
                        // Totals are monotone and never cross: reading the
                        // dequeue total first makes the comparison sound.
                        let deq = q.total_dequeued();
                        let enq = q.total_enqueued();
                        assert!(deq <= enq, "dequeued {deq} > enqueued {enq}");
                    }
                    seen
                })
            })
            .collect();

        // Producers: each runs its random script with a disjoint payload
        // namespace and reports which payloads were actually accepted.
        let producers: Vec<_> = scripts
            .into_iter()
            .enumerate()
            .map(|(p, script)| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut accepted: Vec<i64> = Vec::new();
                    let mut next = (p as i64 + 1) * 1_000_000;
                    for (kind, size) in script {
                        let base = next;
                        next += size as i64;
                        match kind {
                            // Blocking push of one batch: always accepted.
                            0 => {
                                q.push(batch_of(base, size));
                                accepted.extend(base..base + size as i64);
                            }
                            // push_batch of singletons: always accepted.
                            1 => {
                                let singles: Vec<Activation> = (0..size as i64)
                                    .map(|i| Activation::single(int_tuple(&[base + i])))
                                    .collect();
                                q.push_batch(singles);
                                accepted.extend(base..base + size as i64);
                            }
                            // try_push: accepted only if the queue had room.
                            _ => {
                                if q.try_push(batch_of(base, size)).is_ok() {
                                    accepted.extend(base..base + size as i64);
                                }
                            }
                        }
                    }
                    accepted
                })
            })
            .collect();

        let mut pushed: Vec<i64> = Vec::new();
        for producer in producers {
            pushed.extend(producer.join().unwrap());
        }
        q.close();
        let mut consumed: Vec<i64> = Vec::new();
        for consumer in consumers {
            consumed.extend(consumer.join().unwrap());
        }

        pushed.sort_unstable();
        consumed.sort_unstable();
        prop_assert_eq!(
            consumed, pushed,
            "consumed multiset differs from accepted-push multiset"
        );
        prop_assert_eq!(q.total_enqueued(), q.total_dequeued());
        prop_assert!(q.is_exhausted());
    }
}
