//! The filter operator.

use crate::activation::Activation;
use dbs3_lera::predicate::BoundPredicate;
use dbs3_storage::{PartitionedRelation, Tuple};
use std::sync::Arc;

/// A triggered selection: when instance `i` receives its trigger activation
/// it scans fragment `i` of the relation and emits (as one output batch) the
/// tuples satisfying the predicate.
#[derive(Debug)]
pub struct FilterOperator {
    relation: Arc<PartitionedRelation>,
    predicate: BoundPredicate,
}

impl FilterOperator {
    /// Creates a bound filter.
    pub fn new(relation: Arc<PartitionedRelation>, predicate: BoundPredicate) -> Self {
        FilterOperator {
            relation,
            predicate,
        }
    }

    /// Processes one activation for `instance`, returning the output batch.
    /// A trigger scans the whole fragment; a morsel scans its row range.
    ///
    /// Data activations are ignored (a filter is always triggered); the
    /// executor never routes them here, but being lenient keeps the operator
    /// harmless under misuse.
    pub fn process(&self, instance: usize, activation: Activation) -> Vec<Tuple> {
        let fragment = self
            .relation
            .fragment(instance)
            // allow-panic: plan binding sized the instance range; an
            // out-of-range instance is a planner bug worth crashing on.
            .expect("executor only routes activations to existing instances");
        let tuples = fragment.tuples();
        let Some((start, end)) = super::control_range(&activation, tuples.len()) else {
            return Vec::new();
        };
        tuples[start..end]
            .iter()
            .filter(|t| self.predicate.eval(t))
            .cloned()
            .collect()
    }

    /// Rows instance `instance` scans when triggered (its fragment's
    /// cardinality).
    pub fn triggered_rows(&self, instance: usize) -> Option<usize> {
        self.relation
            .fragment(instance)
            .ok()
            .map(|f| f.cardinality())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbs3_lera::Predicate;
    use dbs3_storage::{PartitionSpec, WisconsinConfig, WisconsinGenerator};

    fn relation() -> Arc<PartitionedRelation> {
        let rel = WisconsinGenerator::new()
            .generate(&WisconsinConfig::narrow("A", 1000))
            .unwrap();
        Arc::new(
            PartitionedRelation::from_relation(&rel, PartitionSpec::on("unique1", 8, 2)).unwrap(),
        )
    }

    #[test]
    fn trigger_selects_matching_tuples_of_the_fragment() {
        let rel = relation();
        let schema = rel.schema().clone();
        let pred = Predicate::range("unique1", 0, 100)
            .bind("A", &schema)
            .unwrap();
        let op = FilterOperator::new(Arc::clone(&rel), pred);

        let mut total = 0usize;
        for instance in 0..rel.degree() {
            let out = op.process(instance, Activation::Trigger);
            total += out.len();
            let u1 = schema.column_index("unique1").unwrap();
            for t in &out {
                let v = t.value(u1).as_int().unwrap();
                assert!((0..100).contains(&v));
            }
        }
        assert_eq!(
            total, 100,
            "exactly unique1 in [0,100) across all fragments"
        );
    }

    #[test]
    fn data_activation_is_ignored() {
        let rel = relation();
        let pred = Predicate::True.bind("A", rel.schema()).unwrap();
        let op = FilterOperator::new(Arc::clone(&rel), pred);
        let some_tuple = rel.fragments()[0].tuples()[0].clone();
        assert!(op.process(0, Activation::single(some_tuple)).is_empty());
    }

    #[test]
    fn morsels_cover_the_fragment_exactly_once() {
        let rel = relation();
        let pred = Predicate::True.bind("A", rel.schema()).unwrap();
        let op = FilterOperator::new(Arc::clone(&rel), pred);
        let whole = op.process(2, Activation::Trigger);
        let len = rel.fragment(2).unwrap().cardinality();
        // Split at an uneven boundary, with the last morsel overshooting the
        // fragment (clamped): the concatenation must equal the full scan.
        let mut pieces = Vec::new();
        for (start, end, lead) in [(0, 7, true), (7, len, false), (len, len + 50, false)] {
            pieces.extend(op.process(2, Activation::Morsel { start, end, lead }));
        }
        assert_eq!(pieces, whole);
        assert_eq!(op.triggered_rows(2), Some(len));
    }

    #[test]
    fn true_predicate_returns_whole_fragment() {
        let rel = relation();
        let pred = Predicate::True.bind("A", rel.schema()).unwrap();
        let op = FilterOperator::new(Arc::clone(&rel), pred);
        let out = op.process(3, Activation::Trigger);
        assert_eq!(out.len(), rel.fragment(3).unwrap().cardinality());
    }
}
