//! Physical operators (the paper's "database functions", `DBFunc` in
//! Figure 4).
//!
//! Every operator is *bound*: plan-level column names are resolved to column
//! indexes and relation names to `Arc<PartitionedRelation>` fragments before
//! execution, so processing an activation does no name lookups. Operators are
//! shared by all threads of their operation pool and must be `Send + Sync`.

mod filter;
mod join;
mod store;
mod transmit;

pub use filter::FilterOperator;
pub use join::{PipelinedJoinOperator, TriggeredJoinOperator};
pub use store::StoreOperator;
pub use transmit::TransmitOperator;

use crate::activation::Activation;
use dbs3_storage::Tuple;

/// Resolves a control activation to the fragment row range it covers, given
/// the fragment's cardinality: a trigger covers the whole fragment, a morsel
/// covers its `start..end` slice (clamped to the fragment). Data activations
/// resolve to `None` — they carry tuples, not a scan range.
pub(crate) fn control_range(
    activation: &Activation,
    fragment_len: usize,
) -> Option<(usize, usize)> {
    match activation {
        Activation::Trigger => Some((0, fragment_len)),
        Activation::Morsel { start, end, .. } => {
            let end = (*end).min(fragment_len);
            Some(((*start).min(end), end))
        }
        Activation::Data(_) => None,
    }
}

/// A bound physical operator: given an activation for one of its instances,
/// produce the output tuples.
#[derive(Debug)]
pub enum BoundOperator {
    /// Triggered selection over base fragments.
    Filter(FilterOperator),
    /// Triggered scan + redistribution of base fragments.
    Transmit(TransmitOperator),
    /// Triggered co-partitioned join (IdealJoin).
    TriggeredJoin(TriggeredJoinOperator),
    /// Pipelined join probing co-partitioned inner fragments.
    PipelinedJoin(PipelinedJoinOperator),
    /// Result materialisation.
    Store(StoreOperator),
}

impl BoundOperator {
    /// Processes one transport activation for `instance`, returning the
    /// produced output batch (empty for `Store`). A data activation's whole
    /// tuple batch is processed under this single dispatch.
    pub fn process(&self, instance: usize, activation: Activation) -> Vec<Tuple> {
        match self {
            BoundOperator::Filter(op) => op.process(instance, activation),
            BoundOperator::Transmit(op) => op.process(instance, activation),
            BoundOperator::TriggeredJoin(op) => op.process(instance, activation),
            BoundOperator::PipelinedJoin(op) => op.process(instance, activation),
            BoundOperator::Store(op) => op.process(instance, activation),
        }
    }

    /// For triggered operators, the number of fragment rows instance
    /// `instance` scans when triggered — the cardinality the runtime splits
    /// into morsels at submit time. `None` for pipelined/store operators
    /// (they are driven by data activations, not triggers) or when the
    /// instance has no fragment.
    pub fn triggered_rows(&self, instance: usize) -> Option<usize> {
        match self {
            BoundOperator::Filter(op) => op.triggered_rows(instance),
            BoundOperator::Transmit(op) => op.triggered_rows(instance),
            BoundOperator::TriggeredJoin(op) => op.triggered_rows(instance),
            BoundOperator::PipelinedJoin(_) | BoundOperator::Store(_) => None,
        }
    }

    /// Short operator name for metrics.
    pub fn name(&self) -> &'static str {
        match self {
            BoundOperator::Filter(_) => "filter",
            BoundOperator::Transmit(_) => "transmit",
            BoundOperator::TriggeredJoin(_) => "triggered-join",
            BoundOperator::PipelinedJoin(_) => "pipelined-join",
            BoundOperator::Store(_) => "store",
        }
    }
}
