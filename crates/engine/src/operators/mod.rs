//! Physical operators (the paper's "database functions", `DBFunc` in
//! Figure 4).
//!
//! Every operator is *bound*: plan-level column names are resolved to column
//! indexes and relation names to `Arc<PartitionedRelation>` fragments before
//! execution, so processing an activation does no name lookups. Operators are
//! shared by all threads of their operation pool and must be `Send + Sync`.

mod filter;
mod join;
mod store;
mod transmit;

pub use filter::FilterOperator;
pub use join::{PipelinedJoinOperator, TriggeredJoinOperator};
pub use store::StoreOperator;
pub use transmit::TransmitOperator;

use crate::activation::Activation;
use dbs3_storage::Tuple;

/// A bound physical operator: given an activation for one of its instances,
/// produce the output tuples.
#[derive(Debug)]
pub enum BoundOperator {
    /// Triggered selection over base fragments.
    Filter(FilterOperator),
    /// Triggered scan + redistribution of base fragments.
    Transmit(TransmitOperator),
    /// Triggered co-partitioned join (IdealJoin).
    TriggeredJoin(TriggeredJoinOperator),
    /// Pipelined join probing co-partitioned inner fragments.
    PipelinedJoin(PipelinedJoinOperator),
    /// Result materialisation.
    Store(StoreOperator),
}

impl BoundOperator {
    /// Processes one transport activation for `instance`, returning the
    /// produced output batch (empty for `Store`). A data activation's whole
    /// tuple batch is processed under this single dispatch.
    pub fn process(&self, instance: usize, activation: Activation) -> Vec<Tuple> {
        match self {
            BoundOperator::Filter(op) => op.process(instance, activation),
            BoundOperator::Transmit(op) => op.process(instance, activation),
            BoundOperator::TriggeredJoin(op) => op.process(instance, activation),
            BoundOperator::PipelinedJoin(op) => op.process(instance, activation),
            BoundOperator::Store(op) => op.process(instance, activation),
        }
    }

    /// Short operator name for metrics.
    pub fn name(&self) -> &'static str {
        match self {
            BoundOperator::Filter(_) => "filter",
            BoundOperator::Transmit(_) => "transmit",
            BoundOperator::TriggeredJoin(_) => "triggered-join",
            BoundOperator::PipelinedJoin(_) => "pipelined-join",
            BoundOperator::Store(_) => "store",
        }
    }
}
