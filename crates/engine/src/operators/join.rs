//! Join operators: triggered (co-partitioned) and pipelined.

use crate::activation::Activation;
use dbs3_lera::JoinAlgorithm;
use dbs3_storage::{HashIndex, PartitionedRelation, Tuple};
use std::sync::Arc;
use std::sync::OnceLock;

/// A triggered co-partitioned join (the IdealJoin operation): when instance
/// `i` receives its trigger it joins fragment `i` of the outer relation with
/// fragment `i` of the inner relation.
#[derive(Debug)]
pub struct TriggeredJoinOperator {
    outer: Arc<PartitionedRelation>,
    inner: Arc<PartitionedRelation>,
    outer_column: usize,
    inner_column: usize,
    algorithm: JoinAlgorithm,
    /// Lazily resolved per-instance indexes over the inner fragments.
    /// Resolved once on the first (trigger or morsel) activation of an
    /// instance and shared by every morsel of the fragment — splitting the
    /// outer scan must not multiply the build work. With a
    /// [`shared_generation`](Self::with_shared_generation) the resolution
    /// goes through the engine-wide index cache, so concurrent and repeated
    /// queries over one relation share one build across operators.
    indexes: Vec<OnceLock<Arc<HashIndex>>>,
    /// Shards each temporary index build is partitioned over
    /// ([`HashIndex::build_parallel`]); 1 = sequential build.
    build_shards: usize,
    /// Catalog generation of the inner relation, when known: the key that
    /// lets builds be shared through [`crate::cache::shared_index`]. `None`
    /// keeps builds private to this operator.
    shared_generation: Option<u64>,
}

impl TriggeredJoinOperator {
    /// Creates a bound triggered join (sequential index builds; see
    /// [`Self::with_build_shards`]).
    pub fn new(
        outer: Arc<PartitionedRelation>,
        inner: Arc<PartitionedRelation>,
        outer_column: usize,
        inner_column: usize,
        algorithm: JoinAlgorithm,
    ) -> Self {
        let indexes = (0..inner.degree()).map(|_| OnceLock::new()).collect();
        TriggeredJoinOperator {
            outer,
            inner,
            outer_column,
            inner_column,
            algorithm,
            indexes,
            build_shards: 1,
            shared_generation: None,
        }
    }

    /// Partitions every temporary index build over `shards` threads. Probe
    /// results are identical to the sequential build (same grouped layout).
    pub fn with_build_shards(mut self, shards: usize) -> Self {
        self.build_shards = shards.max(1);
        self
    }

    /// Routes index resolution through the engine-wide shared cache, keyed
    /// by the inner relation's catalog `generation`. Sequential and sharded
    /// builds produce bit-identical layouts, so sharing across operators
    /// with different `build_shards` settings is sound.
    pub fn with_shared_generation(mut self, generation: Option<u64>) -> Self {
        self.shared_generation = generation;
        self
    }

    /// Processes one activation for `instance`, returning the output batch.
    /// A trigger joins the whole outer fragment against the co-partitioned
    /// inner fragment; a morsel joins only its outer row range.
    pub fn process(&self, instance: usize, activation: Activation) -> Vec<Tuple> {
        let outer = self
            .outer
            .fragment(instance)
            // allow-panic: plan binding verified co-partitioning; a missing
            // fragment is a planner bug worth crashing on.
            .expect("co-partitioned operands share the degree of partitioning");
        let outer_tuples = outer.tuples();
        let Some((start, end)) = super::control_range(&activation, outer_tuples.len()) else {
            return Vec::new();
        };
        let inner = self
            .inner
            .fragment(instance)
            // allow-panic: same co-partitioning invariant as `outer` above.
            .expect("co-partitioned operands share the degree of partitioning");
        match self.algorithm {
            JoinAlgorithm::NestedLoop => {
                let mut out = Vec::new();
                for o in &outer_tuples[start..end] {
                    let key = o.value(self.outer_column);
                    for i in inner.tuples() {
                        if i.value(self.inner_column) == key {
                            out.push(o.concat(i));
                        }
                    }
                }
                out
            }
            JoinAlgorithm::Hash | JoinAlgorithm::TempIndex => {
                // Build a temporary index over the inner fragment, then probe
                // it with every outer tuple of the covered range (the paper's
                // "index built on the fly" configuration behaves the same
                // way). The index is resolved once per instance and reused by
                // every sibling morsel; with a shared generation the build
                // itself is shared engine-wide. The probe is an
                // allocation-free iterator over the matching bucket.
                let index = self.indexes[instance].get_or_init(|| {
                    let build = || {
                        HashIndex::build_parallel(
                            inner.tuples(),
                            self.inner_column,
                            self.build_shards,
                        )
                    };
                    match self.shared_generation {
                        Some(generation) => crate::cache::shared_index(
                            self.inner.name(),
                            generation,
                            self.inner_column,
                            instance,
                            build,
                        ),
                        None => Arc::new(build()),
                    }
                });
                let mut out = Vec::new();
                for o in &outer_tuples[start..end] {
                    let key = o.value(self.outer_column);
                    out.extend(index.probe(inner.tuples(), key).map(|m| o.concat(m)));
                }
                out
            }
        }
    }

    /// Rows instance `instance` scans when triggered (its outer fragment's
    /// cardinality).
    pub fn triggered_rows(&self, instance: usize) -> Option<usize> {
        self.outer.fragment(instance).ok().map(|f| f.cardinality())
    }
}

/// A pipelined join: each data activation carries a batch of outer tuples,
/// which are joined against the co-partitioned inner fragment of the
/// receiving instance (the join of AssocJoin and of the filter–join
/// pipeline). Probing the whole batch against one inner fragment under a
/// single activation dispatch is where transport batching pays off.
#[derive(Debug)]
pub struct PipelinedJoinOperator {
    inner: Arc<PartitionedRelation>,
    /// Column of the *incoming* tuples holding the join key.
    outer_column: usize,
    /// Column of the inner relation holding the join key.
    inner_column: usize,
    algorithm: JoinAlgorithm,
    /// Lazily resolved per-instance indexes (Hash / TempIndex algorithms
    /// resolve the index once per instance, on first probe, and reuse it
    /// for every subsequent data activation).
    indexes: Vec<OnceLock<Arc<HashIndex>>>,
    /// Shards each lazy index build is partitioned over
    /// ([`HashIndex::build_parallel`]); 1 = sequential build.
    build_shards: usize,
    /// Catalog generation of the inner relation, when known (see
    /// [`TriggeredJoinOperator::with_shared_generation`]).
    shared_generation: Option<u64>,
}

impl PipelinedJoinOperator {
    /// Creates a bound pipelined join (sequential index builds; see
    /// [`Self::with_build_shards`]).
    pub fn new(
        inner: Arc<PartitionedRelation>,
        outer_column: usize,
        inner_column: usize,
        algorithm: JoinAlgorithm,
    ) -> Self {
        let indexes = (0..inner.degree()).map(|_| OnceLock::new()).collect();
        PipelinedJoinOperator {
            inner,
            outer_column,
            inner_column,
            algorithm,
            indexes,
            build_shards: 1,
            shared_generation: None,
        }
    }

    /// Partitions every lazy per-instance index build over `shards`
    /// threads. Probe results are identical to the sequential build.
    pub fn with_build_shards(mut self, shards: usize) -> Self {
        self.build_shards = shards.max(1);
        self
    }

    /// Routes index resolution through the engine-wide shared cache (see
    /// [`TriggeredJoinOperator::with_shared_generation`]).
    pub fn with_shared_generation(mut self, generation: Option<u64>) -> Self {
        self.shared_generation = generation;
        self
    }

    /// Processes one activation for `instance`, returning the output batch.
    pub fn process(&self, instance: usize, activation: Activation) -> Vec<Tuple> {
        let batch = match activation.into_batch() {
            Some(b) => b,
            None => return Vec::new(), // pipelined joins ignore stray triggers
        };
        let inner = self
            .inner
            .fragment(instance)
            // allow-panic: hash routing is modulo the instance count, so the
            // fragment exists; a miss is a planner bug worth crashing on.
            .expect("routing always targets an existing inner fragment");
        let inner_tuples = inner.tuples();
        match self.algorithm {
            JoinAlgorithm::NestedLoop => {
                let mut out = Vec::new();
                for outer_tuple in &batch {
                    let key = outer_tuple.value(self.outer_column);
                    out.extend(
                        inner_tuples
                            .iter()
                            .filter(|i| i.value(self.inner_column) == key)
                            .map(|i| outer_tuple.concat(i)),
                    );
                }
                out
            }
            JoinAlgorithm::Hash | JoinAlgorithm::TempIndex => {
                let index = self.indexes[instance].get_or_init(|| {
                    let build = || {
                        HashIndex::build_parallel(
                            inner_tuples,
                            self.inner_column,
                            self.build_shards,
                        )
                    };
                    match self.shared_generation {
                        Some(generation) => crate::cache::shared_index(
                            self.inner.name(),
                            generation,
                            self.inner_column,
                            instance,
                            build,
                        ),
                        None => Arc::new(build()),
                    }
                });
                let mut out = Vec::new();
                for outer_tuple in &batch {
                    let key = outer_tuple.value(self.outer_column);
                    out.extend(
                        index
                            .probe(inner_tuples, key)
                            .map(|i| outer_tuple.concat(i)),
                    );
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::TupleBatch;
    use dbs3_storage::{PartitionSpec, Relation, WisconsinConfig, WisconsinGenerator};

    fn partitioned(
        name: &str,
        cardinality: usize,
        degree: usize,
    ) -> (Relation, Arc<PartitionedRelation>) {
        let rel = WisconsinGenerator::new()
            .generate(&WisconsinConfig::narrow(name, cardinality))
            .unwrap();
        let part = Arc::new(
            PartitionedRelation::from_relation(&rel, PartitionSpec::on("unique1", degree, 2))
                .unwrap(),
        );
        (rel, part)
    }

    fn run_triggered(op: &TriggeredJoinOperator, degree: usize) -> usize {
        (0..degree)
            .map(|i| op.process(i, Activation::Trigger).len())
            .sum()
    }

    #[test]
    fn triggered_join_matches_reference_for_all_algorithms() {
        let (a_rel, a) = partitioned("A", 400, 10);
        let (b_rel, b) = partitioned("Bprime", 40, 10);
        let u1 = a.schema().column_index("unique1").unwrap();
        let expected = a_rel
            .reference_join(&b_rel, "unique1", "unique1")
            .unwrap()
            .len();
        for algorithm in [
            JoinAlgorithm::NestedLoop,
            JoinAlgorithm::Hash,
            JoinAlgorithm::TempIndex,
        ] {
            let op = TriggeredJoinOperator::new(Arc::clone(&a), Arc::clone(&b), u1, u1, algorithm);
            assert_eq!(run_triggered(&op, 10), expected, "algorithm {algorithm:?}");
        }
    }

    #[test]
    fn triggered_join_result_tuples_are_concatenations() {
        let (_, a) = partitioned("A", 100, 5);
        let (_, b) = partitioned("Bprime", 100, 5);
        let u1 = a.schema().column_index("unique1").unwrap();
        let op =
            TriggeredJoinOperator::new(Arc::clone(&a), Arc::clone(&b), u1, u1, JoinAlgorithm::Hash);
        let out = op.process(2, Activation::Trigger);
        assert!(!out.is_empty());
        let width = a.schema().width() + b.schema().width();
        for t in &out {
            assert_eq!(t.arity(), width);
            assert_eq!(t.value(u1), t.value(a.schema().width() + u1));
        }
    }

    #[test]
    fn pipelined_join_matches_reference() {
        let (a_rel, a) = partitioned("A", 300, 8);
        let (b_rel, _b) = partitioned("Bprime", 30, 8);
        let u1 = a.schema().column_index("unique1").unwrap();
        let expected = b_rel
            .reference_join(&a_rel, "unique1", "unique1")
            .unwrap()
            .len();

        for algorithm in [JoinAlgorithm::NestedLoop, JoinAlgorithm::Hash] {
            let op = PipelinedJoinOperator::new(Arc::clone(&a), u1, u1, algorithm);
            // Route every B' tuple to the instance its key hashes to, exactly
            // like the executor does.
            let mut total = 0usize;
            for t in b_rel.tuples() {
                let h = t.hash_key(&[u1]);
                let instance = a.spec().fragment_of_hash(h);
                total += op.process(instance, Activation::single(t.clone())).len();
            }
            assert_eq!(total, expected, "algorithm {algorithm:?}");
        }
    }

    #[test]
    fn batched_probes_match_per_tuple_probes() {
        let (_, a) = partitioned("A", 200, 4);
        let u1 = a.schema().column_index("unique1").unwrap();
        for algorithm in [JoinAlgorithm::NestedLoop, JoinAlgorithm::Hash] {
            let op = PipelinedJoinOperator::new(Arc::clone(&a), u1, u1, algorithm);
            // All tuples of fragment 1 probed against themselves, once as
            // one batch and once tuple by tuple.
            let probes: Vec<Tuple> = a.fragments()[1].tuples().to_vec();
            let batched = op.process(1, Activation::Data(TupleBatch::from(probes.clone())));
            let singles: Vec<Tuple> = probes
                .iter()
                .flat_map(|t| op.process(1, Activation::single(t.clone())))
                .collect();
            assert_eq!(batched, singles, "algorithm {algorithm:?}");
            assert_eq!(batched.len(), probes.len(), "unique1 self-join");
        }
    }

    #[test]
    fn pipelined_join_reuses_per_instance_index() {
        let (_, a) = partitioned("A", 100, 4);
        let u1 = a.schema().column_index("unique1").unwrap();
        let op = PipelinedJoinOperator::new(Arc::clone(&a), u1, u1, JoinAlgorithm::TempIndex);
        // Probing twice must not rebuild (OnceLock gives the same instance).
        let probe = a.fragments()[1].tuples()[0].clone();
        let _ = op.process(1, Activation::single(probe.clone()));
        let ptr1 = Arc::as_ptr(op.indexes[1].get().unwrap());
        let _ = op.process(1, Activation::single(probe));
        let ptr2 = Arc::as_ptr(op.indexes[1].get().unwrap());
        assert_eq!(ptr1, ptr2);
    }

    #[test]
    fn shared_generation_shares_builds_across_operators() {
        let (_, a) = partitioned("A", 200, 4);
        let u1 = a.schema().column_index("unique1").unwrap();
        // A private generation keeps this test's cache entries disjoint
        // from every real catalog generation in the process.
        let generation = Some(u64::MAX - 41);
        let probe = a.fragments()[2].tuples()[0].clone();
        let first = PipelinedJoinOperator::new(Arc::clone(&a), u1, u1, JoinAlgorithm::Hash)
            .with_shared_generation(generation);
        let second = PipelinedJoinOperator::new(Arc::clone(&a), u1, u1, JoinAlgorithm::Hash)
            .with_shared_generation(generation);
        let out1 = first.process(2, Activation::single(probe.clone()));
        let out2 = second.process(2, Activation::single(probe));
        assert_eq!(out1, out2);
        assert_eq!(
            Arc::as_ptr(first.indexes[2].get().unwrap()),
            Arc::as_ptr(second.indexes[2].get().unwrap()),
            "two operators over one (relation, generation) share one build"
        );
        // Without a generation, builds stay private.
        let private = PipelinedJoinOperator::new(Arc::clone(&a), u1, u1, JoinAlgorithm::Hash);
        let probe2 = a.fragments()[2].tuples()[1].clone();
        let _ = private.process(2, Activation::single(probe2));
        assert_ne!(
            Arc::as_ptr(first.indexes[2].get().unwrap()),
            Arc::as_ptr(private.indexes[2].get().unwrap())
        );
    }

    #[test]
    fn sharded_index_builds_do_not_change_join_output() {
        // Builds happen per *fragment*, and `build_parallel` falls back to
        // sequential below 4_096 rows per shard — so each inner fragment
        // must hold >= 8_192 tuples for 2 shards to genuinely engage the
        // partitioned build. 40_000 over 2 fragments gives ~20_000 per
        // fragment: 2 shards engage as requested, 8 clamp to 4 (both real
        // parallel builds, not the sequential fallback).
        let (_, a) = partitioned("A", 40_000, 2);
        let u1 = a.schema().column_index("unique1").unwrap();
        let probes: Vec<Tuple> = a.fragments()[0].tuples()[..500].to_vec();
        let reference: Vec<Tuple> = {
            let op = PipelinedJoinOperator::new(Arc::clone(&a), u1, u1, JoinAlgorithm::Hash);
            op.process(0, Activation::Data(TupleBatch::from(probes.clone())))
        };
        assert_eq!(reference.len(), 500, "unique1 self-join");
        for shards in [1usize, 2, 8] {
            let op = PipelinedJoinOperator::new(Arc::clone(&a), u1, u1, JoinAlgorithm::Hash)
                .with_build_shards(shards);
            let out = op.process(0, Activation::Data(TupleBatch::from(probes.clone())));
            assert_eq!(out, reference, "pipelined join diverged at {shards} shards");
        }
        // Triggered join with the big relation as the *inner* operand, so
        // its per-fragment temporary index build also crosses the parallel
        // threshold; B' (20_000 over 2 => ~10_000/fragment) is the outer.
        let (_, b) = partitioned("Bprime", 20_000, 2);
        let expected = {
            let op = TriggeredJoinOperator::new(
                Arc::clone(&b),
                Arc::clone(&a),
                u1,
                u1,
                JoinAlgorithm::Hash,
            );
            run_triggered(&op, 2)
        };
        assert_eq!(expected, 20_000, "B' joins A fully on unique1");
        for shards in [2usize, 8] {
            let op = TriggeredJoinOperator::new(
                Arc::clone(&b),
                Arc::clone(&a),
                u1,
                u1,
                JoinAlgorithm::Hash,
            )
            .with_build_shards(shards);
            assert_eq!(
                run_triggered(&op, 2),
                expected,
                "triggered join at {shards} shards"
            );
        }
    }

    #[test]
    fn triggered_join_morsels_union_to_the_whole_trigger() {
        let (_, a) = partitioned("A", 400, 4);
        let (_, b) = partitioned("Bprime", 40, 4);
        let u1 = a.schema().column_index("unique1").unwrap();
        for algorithm in [JoinAlgorithm::NestedLoop, JoinAlgorithm::Hash] {
            let whole = {
                let op =
                    TriggeredJoinOperator::new(Arc::clone(&a), Arc::clone(&b), u1, u1, algorithm);
                op.process(1, Activation::Trigger)
            };
            let op = TriggeredJoinOperator::new(Arc::clone(&a), Arc::clone(&b), u1, u1, algorithm);
            let rows = op.triggered_rows(1).unwrap();
            let mut pieces = Vec::new();
            let mut start = 0usize;
            while start < rows {
                let end = (start + 13).min(rows);
                pieces.extend(op.process(
                    1,
                    Activation::Morsel {
                        start,
                        end,
                        lead: start == 0,
                    },
                ));
                start = end;
            }
            assert_eq!(pieces, whole, "algorithm {algorithm:?}");
        }
    }

    #[test]
    fn triggered_join_reuses_per_instance_index_across_morsels() {
        let (_, a) = partitioned("A", 100, 4);
        let (_, b) = partitioned("Bprime", 100, 4);
        let u1 = a.schema().column_index("unique1").unwrap();
        let op =
            TriggeredJoinOperator::new(Arc::clone(&a), Arc::clone(&b), u1, u1, JoinAlgorithm::Hash);
        let _ = op.process(
            1,
            Activation::Morsel {
                start: 0,
                end: 5,
                lead: true,
            },
        );
        let ptr1 = Arc::as_ptr(op.indexes[1].get().unwrap());
        let _ = op.process(
            1,
            Activation::Morsel {
                start: 5,
                end: 10,
                lead: false,
            },
        );
        let ptr2 = Arc::as_ptr(op.indexes[1].get().unwrap());
        assert_eq!(ptr1, ptr2, "morsels of one fragment share one build");
    }

    #[test]
    fn stray_activations_are_ignored() {
        let (_, a) = partitioned("A", 50, 4);
        let (_, b) = partitioned("Bprime", 50, 4);
        let u1 = a.schema().column_index("unique1").unwrap();
        let triggered =
            TriggeredJoinOperator::new(Arc::clone(&a), Arc::clone(&b), u1, u1, JoinAlgorithm::Hash);
        let some = a.fragments()[0].tuples()[0].clone();
        assert!(triggered.process(0, Activation::single(some)).is_empty());
        let pipelined = PipelinedJoinOperator::new(Arc::clone(&a), u1, u1, JoinAlgorithm::Hash);
        assert!(pipelined.process(0, Activation::Trigger).is_empty());
    }
}
