//! The store operator.

use crate::activation::Activation;
use dbs3_storage::Tuple;
use parking_lot::Mutex;
use std::sync::Arc;

/// Materialises incoming tuples into per-instance result buffers.
///
/// Result fragments are co-located with the producing join instances
/// (`Res_i` next to `Join_i` in Figures 2–3), so instance `i` of the store
/// appends to buffer `i`; a whole incoming batch is appended under one lock
/// acquisition, and no cross-instance locking happens on the hot path.
#[derive(Debug)]
pub struct StoreOperator {
    result_name: String,
    buffers: Arc<Vec<Mutex<Vec<Tuple>>>>,
}

impl StoreOperator {
    /// Creates a store with `instances` result fragments.
    pub fn new(result_name: impl Into<String>, instances: usize) -> Self {
        StoreOperator {
            result_name: result_name.into(),
            buffers: Arc::new(
                (0..instances.max(1))
                    .map(|_| Mutex::new(Vec::new()))
                    .collect(),
            ),
        }
    }

    /// Name of the stored result.
    pub fn result_name(&self) -> &str {
        &self.result_name
    }

    /// Number of result fragments.
    pub fn instance_count(&self) -> usize {
        self.buffers.len()
    }

    /// Processes one activation for `instance`. A data batch is appended to
    /// the instance's result fragment in one pass; triggers are ignored.
    pub fn process(&self, instance: usize, activation: Activation) -> Vec<Tuple> {
        if let Some(batch) = activation.into_batch() {
            let mut buffer = self.buffers[instance % self.buffers.len()].lock();
            buffer.extend(batch);
        }
        Vec::new()
    }

    /// Total number of stored tuples across fragments.
    pub fn stored_count(&self) -> usize {
        self.buffers.iter().map(|b| b.lock().len()).sum()
    }

    /// Per-fragment stored counts (used to observe redistribution skew, RS in
    /// the paper's taxonomy).
    pub fn fragment_counts(&self) -> Vec<usize> {
        self.buffers.iter().map(|b| b.lock().len()).collect()
    }

    /// Drains every fragment into a single result vector.
    pub fn take_all(&self) -> Vec<Tuple> {
        let mut out = Vec::new();
        for b in self.buffers.iter() {
            out.append(&mut b.lock());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::TupleBatch;
    use dbs3_storage::tuple::int_tuple;

    #[test]
    fn stores_data_and_ignores_triggers() {
        let op = StoreOperator::new("Result", 4);
        assert_eq!(op.result_name(), "Result");
        assert_eq!(op.instance_count(), 4);
        op.process(0, Activation::Trigger);
        op.process(
            1,
            Activation::Data(TupleBatch::from(vec![int_tuple(&[1]), int_tuple(&[2])])),
        );
        op.process(3, Activation::single(int_tuple(&[3])));
        assert_eq!(op.stored_count(), 3);
        assert_eq!(op.fragment_counts(), vec![0, 2, 0, 1]);
    }

    #[test]
    fn take_all_collects_and_empties() {
        let op = StoreOperator::new("Result", 2);
        op.process(0, Activation::single(int_tuple(&[1])));
        op.process(1, Activation::single(int_tuple(&[2])));
        let all = op.take_all();
        assert_eq!(all.len(), 2);
        assert_eq!(op.stored_count(), 0);
    }

    #[test]
    fn zero_instances_clamped_to_one() {
        let op = StoreOperator::new("Result", 0);
        assert_eq!(op.instance_count(), 1);
        op.process(5, Activation::single(int_tuple(&[9])));
        assert_eq!(op.stored_count(), 1);
    }

    #[test]
    fn concurrent_appends_from_many_threads() {
        use std::thread;
        let op = Arc::new(StoreOperator::new("Result", 8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let op = Arc::clone(&op);
                thread::spawn(move || {
                    for i in 0..125 {
                        // Two tuples per batch: 250 stored per thread.
                        op.process(
                            (t + i) % 8,
                            Activation::Data(TupleBatch::from(vec![
                                int_tuple(&[i as i64]),
                                int_tuple(&[-(i as i64)]),
                            ])),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(op.stored_count(), 1000);
    }
}
