//! The store operator.

use crate::activation::Activation;
use dbs3_storage::Tuple;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Materialises incoming tuples into per-instance result buffers — or, in
/// *counting* mode, only tallies them.
///
/// Result fragments are co-located with the producing join instances
/// (`Res_i` next to `Join_i` in Figures 2–3), so instance `i` of the store
/// appends to buffer `i`; a whole incoming batch is appended under one lock
/// acquisition, and no cross-instance locking happens on the hot path.
///
/// A store built with [`StoreOperator::counting`] never materialises tuples:
/// it bumps a per-fragment atomic counter instead, so workloads that only
/// need cardinalities and metrics (benches, the `baseline` bin,
/// `Query::discard_results()`) skip the result `Vec<Tuple>` entirely.
#[derive(Debug)]
pub struct StoreOperator {
    result_name: String,
    buffers: Arc<Vec<Mutex<Vec<Tuple>>>>,
    // ordering(counts): Relaxed — independent per-fragment tallies with no
    // cross-field invariants; totals are only read after the query drains.
    // ordering(c): the same counters bound as `c` in iterator closures —
    // same Relaxed protocol.
    /// Per-fragment tuple tallies, maintained only in counting mode.
    counts: Arc<Vec<AtomicUsize>>,
    /// Whether tuples are counted and dropped instead of materialised.
    discard: bool,
}

impl StoreOperator {
    /// Creates a store with `instances` result fragments.
    pub fn new(result_name: impl Into<String>, instances: usize) -> Self {
        Self::build(result_name, instances, false)
    }

    /// Creates a counting store: incoming tuples are tallied per fragment
    /// and dropped, never materialised.
    pub fn counting(result_name: impl Into<String>, instances: usize) -> Self {
        Self::build(result_name, instances, true)
    }

    fn build(result_name: impl Into<String>, instances: usize, discard: bool) -> Self {
        let instances = instances.max(1);
        StoreOperator {
            result_name: result_name.into(),
            buffers: Arc::new((0..instances).map(|_| Mutex::new(Vec::new())).collect()),
            counts: Arc::new((0..instances).map(|_| AtomicUsize::new(0)).collect()),
            discard,
        }
    }

    /// Name of the stored result.
    pub fn result_name(&self) -> &str {
        &self.result_name
    }

    /// Number of result fragments.
    pub fn instance_count(&self) -> usize {
        self.buffers.len()
    }

    /// Whether this store counts tuples instead of materialising them.
    pub fn is_counting(&self) -> bool {
        self.discard
    }

    /// Processes one activation for `instance`. A data batch is appended to
    /// the instance's result fragment (or tallied, in counting mode) in one
    /// pass; triggers are ignored.
    pub fn process(&self, instance: usize, activation: Activation) -> Vec<Tuple> {
        if let Some(batch) = activation.into_batch() {
            let slot = instance % self.buffers.len();
            if self.discard {
                self.counts[slot].fetch_add(batch.len(), Ordering::Relaxed);
            } else {
                let mut buffer = self.buffers[slot].lock();
                buffer.extend(batch);
            }
        }
        Vec::new()
    }

    /// Total number of stored (or, in counting mode, tallied) tuples across
    /// fragments.
    pub fn stored_count(&self) -> usize {
        if self.discard {
            self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
        } else {
            self.buffers.iter().map(|b| b.lock().len()).sum()
        }
    }

    /// Per-fragment stored counts (used to observe redistribution skew, RS in
    /// the paper's taxonomy). Valid in both modes.
    pub fn fragment_counts(&self) -> Vec<usize> {
        if self.discard {
            self.counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect()
        } else {
            self.buffers.iter().map(|b| b.lock().len()).collect()
        }
    }

    /// Drains every fragment into a single result vector. A counting store
    /// has nothing to drain and returns an empty vector.
    pub fn take_all(&self) -> Vec<Tuple> {
        let mut out = Vec::new();
        for b in self.buffers.iter() {
            out.append(&mut b.lock());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::TupleBatch;
    use dbs3_storage::tuple::int_tuple;

    #[test]
    fn stores_data_and_ignores_triggers() {
        let op = StoreOperator::new("Result", 4);
        assert_eq!(op.result_name(), "Result");
        assert_eq!(op.instance_count(), 4);
        op.process(0, Activation::Trigger);
        op.process(
            1,
            Activation::Data(TupleBatch::from(vec![int_tuple(&[1]), int_tuple(&[2])])),
        );
        op.process(3, Activation::single(int_tuple(&[3])));
        assert_eq!(op.stored_count(), 3);
        assert_eq!(op.fragment_counts(), vec![0, 2, 0, 1]);
    }

    #[test]
    fn take_all_collects_and_empties() {
        let op = StoreOperator::new("Result", 2);
        op.process(0, Activation::single(int_tuple(&[1])));
        op.process(1, Activation::single(int_tuple(&[2])));
        let all = op.take_all();
        assert_eq!(all.len(), 2);
        assert_eq!(op.stored_count(), 0);
    }

    #[test]
    fn zero_instances_clamped_to_one() {
        let op = StoreOperator::new("Result", 0);
        assert_eq!(op.instance_count(), 1);
        op.process(5, Activation::single(int_tuple(&[9])));
        assert_eq!(op.stored_count(), 1);
    }

    #[test]
    fn counting_store_tallies_without_materialising() {
        let op = StoreOperator::counting("Result", 4);
        assert!(op.is_counting());
        op.process(0, Activation::Trigger);
        op.process(
            1,
            Activation::Data(TupleBatch::from(vec![int_tuple(&[1]), int_tuple(&[2])])),
        );
        op.process(3, Activation::single(int_tuple(&[3])));
        assert_eq!(op.stored_count(), 3);
        assert_eq!(op.fragment_counts(), vec![0, 2, 0, 1]);
        assert!(
            op.take_all().is_empty(),
            "counting mode materialises nothing"
        );
        assert_eq!(op.stored_count(), 3, "take_all must not reset the tally");
    }

    #[test]
    fn concurrent_appends_from_many_threads() {
        use std::thread;
        let op = Arc::new(StoreOperator::new("Result", 8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let op = Arc::clone(&op);
                thread::spawn(move || {
                    for i in 0..125 {
                        // Two tuples per batch: 250 stored per thread.
                        op.process(
                            (t + i) % 8,
                            Activation::Data(TupleBatch::from(vec![
                                int_tuple(&[i as i64]),
                                int_tuple(&[-(i as i64)]),
                            ])),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(op.stored_count(), 1000);
    }
}
