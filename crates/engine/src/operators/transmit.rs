//! The transmit (redistribution) operator.

use crate::activation::Activation;
use dbs3_storage::{PartitionedRelation, Tuple};
use std::sync::Arc;

/// A triggered scan that forwards every tuple of its fragment downstream as
/// one output batch.
///
/// The *redistribution* itself — deciding which consumer instance each tuple
/// goes to — is the executor's routing step (hash of the key column), exactly
/// as in the paper's AssocJoin plan where the transmit operator's data
/// activations are spread over the join instances.
#[derive(Debug)]
pub struct TransmitOperator {
    relation: Arc<PartitionedRelation>,
}

impl TransmitOperator {
    /// Creates a bound transmit.
    pub fn new(relation: Arc<PartitionedRelation>) -> Self {
        TransmitOperator { relation }
    }

    /// Processes one activation for `instance`, returning the output batch.
    /// A trigger forwards the whole fragment; a morsel forwards its row
    /// range.
    pub fn process(&self, instance: usize, activation: Activation) -> Vec<Tuple> {
        let tuples = self
            .relation
            .fragment(instance)
            // allow-panic: plan binding sized the instance range; an
            // out-of-range instance is a planner bug worth crashing on.
            .expect("executor only routes activations to existing instances")
            .tuples();
        let Some((start, end)) = super::control_range(&activation, tuples.len()) else {
            return Vec::new();
        };
        tuples[start..end].to_vec()
    }

    /// Rows instance `instance` forwards when triggered (its fragment's
    /// cardinality).
    pub fn triggered_rows(&self, instance: usize) -> Option<usize> {
        self.relation
            .fragment(instance)
            .ok()
            .map(|f| f.cardinality())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbs3_storage::{PartitionSpec, WisconsinConfig, WisconsinGenerator};

    #[test]
    fn emits_every_tuple_of_every_fragment_exactly_once() {
        let rel = WisconsinGenerator::new()
            .generate(&WisconsinConfig::narrow("Bprime", 500))
            .unwrap();
        let part = Arc::new(
            PartitionedRelation::from_relation(&rel, PartitionSpec::on("unique1", 7, 2)).unwrap(),
        );
        let op = TransmitOperator::new(Arc::clone(&part));
        let mut ids = Vec::new();
        for instance in 0..part.degree() {
            for t in op.process(instance, Activation::Trigger) {
                ids.push(t.value(0).as_int().unwrap());
            }
        }
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<i64>>());
    }

    #[test]
    fn data_activation_is_ignored() {
        let rel = WisconsinGenerator::new()
            .generate(&WisconsinConfig::narrow("Bprime", 10))
            .unwrap();
        let part = Arc::new(
            PartitionedRelation::from_relation(&rel, PartitionSpec::on("unique1", 2, 1)).unwrap(),
        );
        let op = TransmitOperator::new(Arc::clone(&part));
        let t = part.fragments()[0].tuples()[0].clone();
        assert!(op.process(0, Activation::single(t)).is_empty());
    }
}
