//! Engine errors.

use std::fmt;

/// Errors produced while scheduling or executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The plan failed validation or expansion.
    Plan(String),
    /// A storage lookup failed at bind time.
    Storage(String),
    /// The schedule does not cover every operation of the plan.
    IncompleteSchedule { node: usize },
    /// A schedule parameter is invalid (zero threads, zero queue capacity,...).
    InvalidSchedule(String),
    /// The scheduler options themselves are invalid (zero total threads,
    /// zero cache size, ...). Rejected up front instead of silently clamping.
    InvalidOptions(String),
    /// A worker thread panicked during execution.
    WorkerPanicked { operation: String },
    /// The executor was asked to run a plan with no store operator, so there
    /// is nowhere to put the result.
    NoStoreOperator,
    /// The query was cancelled through its
    /// [`QueryHandle`](crate::runtime::QueryHandle) before it completed.
    QueryCancelled { query: u64 },
    /// The [`Runtime`](crate::runtime::Runtime) was shut down (dropped) while
    /// the query was still in flight.
    RuntimeShutdown,
    /// The query outcome was already taken from its handle (a second
    /// `wait()` after a successful `try_outcome()`).
    OutcomeTaken,
    /// A bounded wait on a [`QueryHandle`](crate::runtime::QueryHandle)
    /// elapsed before the query completed. The query keeps running and the
    /// handle stays usable (wait again, or cancel).
    WaitTimeout,
    /// The query's deadline elapsed and the query was cancelled (by
    /// [`QueryHandle::wait_timeout_or_cancel`](crate::runtime::QueryHandle::wait_timeout_or_cancel)).
    /// Unlike [`EngineError::WaitTimeout`] the query is no longer running.
    DeadlineExceeded { query: u64 },
    /// The runtime watchdog saw no activation progress on the query for
    /// longer than its stall interval and aborted it.
    QueryStuck { query: u64, stalled_for_ms: u64 },
    /// An installed [`FaultPlan`](crate::faults::FaultPlan) fired an
    /// `error`/`drop` action at the named fault point.
    FaultInjected { point: String },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(msg) => write!(f, "plan error: {msg}"),
            EngineError::Storage(msg) => write!(f, "storage error: {msg}"),
            EngineError::IncompleteSchedule { node } => {
                write!(f, "schedule is missing operation for plan node {node}")
            }
            EngineError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
            EngineError::InvalidOptions(msg) => write!(f, "invalid scheduler options: {msg}"),
            EngineError::WorkerPanicked { operation } => {
                write!(f, "a worker thread of operation `{operation}` panicked")
            }
            EngineError::NoStoreOperator => {
                write!(f, "plan has no store operator; results would be lost")
            }
            EngineError::QueryCancelled { query } => {
                write!(f, "query {query} was cancelled")
            }
            EngineError::RuntimeShutdown => {
                write!(f, "the runtime was shut down before the query completed")
            }
            EngineError::OutcomeTaken => {
                write!(f, "the query outcome was already taken from the handle")
            }
            EngineError::WaitTimeout => {
                write!(f, "timed out waiting for the query to complete")
            }
            EngineError::DeadlineExceeded { query } => {
                write!(f, "query {query} exceeded its deadline and was cancelled")
            }
            EngineError::QueryStuck {
                query,
                stalled_for_ms,
            } => {
                write!(
                    f,
                    "query {query} made no progress for {stalled_for_ms} ms and was aborted by the watchdog"
                )
            }
            EngineError::FaultInjected { point } => {
                write!(f, "injected fault fired at `{point}`")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<dbs3_lera::PlanError> for EngineError {
    fn from(e: dbs3_lera::PlanError) -> Self {
        EngineError::Plan(e.to_string())
    }
}

impl From<dbs3_storage::StorageError> for EngineError {
    fn from(e: dbs3_storage::StorageError) -> Self {
        EngineError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EngineError::NoStoreOperator.to_string().contains("store"));
        assert!(EngineError::IncompleteSchedule { node: 4 }
            .to_string()
            .contains('4'));
        assert!(EngineError::InvalidSchedule("x".into())
            .to_string()
            .contains('x'));
        assert!(EngineError::QueryCancelled { query: 7 }
            .to_string()
            .contains('7'));
        assert!(EngineError::RuntimeShutdown.to_string().contains("shut"));
        assert!(EngineError::OutcomeTaken.to_string().contains("taken"));
        assert!(EngineError::WaitTimeout.to_string().contains("timed out"));
        assert!(EngineError::DeadlineExceeded { query: 3 }
            .to_string()
            .contains("deadline"));
        assert!(EngineError::QueryStuck {
            query: 9,
            stalled_for_ms: 250
        }
        .to_string()
        .contains("250"));
        assert!(EngineError::FaultInjected {
            point: "serve.write".into()
        }
        .to_string()
        .contains("serve.write"));
    }

    #[test]
    fn conversions() {
        let p: EngineError = dbs3_lera::PlanError::EmptyPlan.into();
        assert!(matches!(p, EngineError::Plan(_)));
        let s: EngineError = dbs3_storage::StorageError::InvalidDegree(0).into();
        assert!(matches!(s, EngineError::Storage(_)));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<EngineError>();
    }
}
