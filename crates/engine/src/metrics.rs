//! Execution metrics.
//!
//! The experiments need more than the elapsed time: the load-balancing story
//! of the paper is about *how evenly* the threads of a pool were busy, how
//! many activations each consumed, and how often threads had to leave their
//! main queues. These metrics also power the ablation benches (adaptive pool
//! vs static one-thread-per-instance, effect of the internal cache).

use crate::cache::CacheStats;
use crate::strategy::ConsumptionStrategy;
use dbs3_lera::NodeId;
use std::time::Duration;

/// Metrics of one worker thread of an operation pool.
///
/// All activation counters are **logical** (the paper's per-tuple model):
/// a data activation contributes one count per tuple of its transport batch,
/// a trigger contributes one. They are therefore invariant under the
/// `CacheSize` batch granularity and comparable with the simulator's counts.
#[derive(Debug, Clone, Default)]
pub struct ThreadMetrics {
    /// Thread index within the pool.
    pub thread: usize,
    /// Logical activations consumed.
    pub activations: u64,
    /// Output tuples produced.
    pub tuples_out: u64,
    /// Time spent processing activations.
    pub busy: Duration,
    /// Number of probes of the operation's queues that found no poppable
    /// batch (another worker emptied them between the work hint and the
    /// pop).
    pub idle_polls: u64,
    /// Logical activations consumed from the thread's main queues.
    pub main_queue_hits: u64,
    /// Logical activations consumed from secondary queues.
    pub secondary_queue_hits: u64,
    /// Batch flushes of the producer-side internal cache.
    pub cache_flushes: u64,
}

/// Metrics of one operation (thread pool).
#[derive(Debug, Clone)]
pub struct OperationMetrics {
    /// Plan node of the operation.
    pub node: NodeId,
    /// Operation display name.
    pub name: String,
    /// Strategy the pool used.
    pub strategy: ConsumptionStrategy,
    /// Number of activation queues (operation instances).
    pub queues: usize,
    /// Per-thread metrics.
    pub threads: Vec<ThreadMetrics>,
}

impl OperationMetrics {
    /// Total activations consumed by the pool.
    pub fn total_activations(&self) -> u64 {
        self.threads.iter().map(|t| t.activations).sum()
    }

    /// Total output tuples produced by the pool.
    pub fn total_tuples_out(&self) -> u64 {
        self.threads.iter().map(|t| t.tuples_out).sum()
    }

    /// Busy time of the longest-running thread — the response time of the
    /// operation is that of its slowest thread.
    pub fn max_busy(&self) -> Duration {
        self.threads
            .iter()
            .map(|t| t.busy)
            .max()
            .unwrap_or_default()
    }

    /// Average busy time across threads.
    pub fn avg_busy(&self) -> Duration {
        if self.threads.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.threads.iter().map(|t| t.busy).sum();
        total / self.threads.len() as u32
    }

    /// Load imbalance: `max_busy / avg_busy` (1.0 = perfectly balanced).
    pub fn busy_imbalance(&self) -> f64 {
        let avg = self.avg_busy().as_secs_f64();
        if avg == 0.0 {
            1.0
        } else {
            self.max_busy().as_secs_f64() / avg
        }
    }

    /// Fraction of consumed activations that came from secondary queues —
    /// a proxy for how much dynamic rebalancing the shared queues provided.
    pub fn secondary_consumption_ratio(&self) -> f64 {
        let main: u64 = self.threads.iter().map(|t| t.main_queue_hits).sum();
        let secondary: u64 = self.threads.iter().map(|t| t.secondary_queue_hits).sum();
        let total = main + secondary;
        if total == 0 {
            0.0
        } else {
            secondary as f64 / total as f64
        }
    }
}

/// Metrics of a whole query execution.
#[derive(Debug, Clone)]
pub struct ExecutionMetrics {
    /// Wall-clock time of the parallel execution (excluding plan binding).
    pub elapsed: Duration,
    /// Total threads spawned across all pools.
    pub total_threads: usize,
    /// Per-operation metrics, in plan order.
    pub operations: Vec<OperationMetrics>,
    /// Query-setup cache activity attributable to this execution: the delta
    /// of the process-wide [`CacheStats`] between submission and completion.
    /// Under concurrent queries the counters race, so treat the numbers as
    /// attribution, not an exact per-query ledger.
    pub caches: CacheStats,
}

impl ExecutionMetrics {
    /// Total activations consumed across the query.
    pub fn total_activations(&self) -> u64 {
        self.operations
            .iter()
            .map(OperationMetrics::total_activations)
            .sum()
    }

    /// Metrics of one operation.
    pub fn operation(&self, node: NodeId) -> Option<&OperationMetrics> {
        self.operations.iter().find(|o| o.node == node)
    }

    /// The largest per-operation busy imbalance in the query (1.0 = balanced).
    pub fn worst_imbalance(&self) -> f64 {
        self.operations
            .iter()
            .map(OperationMetrics::busy_imbalance)
            .fold(1.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread(
        thread: usize,
        activations: u64,
        busy_ms: u64,
        main: u64,
        secondary: u64,
    ) -> ThreadMetrics {
        ThreadMetrics {
            thread,
            activations,
            tuples_out: activations * 2,
            busy: Duration::from_millis(busy_ms),
            idle_polls: 0,
            main_queue_hits: main,
            secondary_queue_hits: secondary,
            cache_flushes: 0,
        }
    }

    fn operation() -> OperationMetrics {
        OperationMetrics {
            node: NodeId(0),
            name: "join".to_string(),
            strategy: ConsumptionStrategy::Random,
            queues: 4,
            threads: vec![thread(0, 10, 100, 8, 2), thread(1, 30, 300, 30, 0)],
        }
    }

    #[test]
    fn totals() {
        let op = operation();
        assert_eq!(op.total_activations(), 40);
        assert_eq!(op.total_tuples_out(), 80);
    }

    #[test]
    fn imbalance_ratio() {
        let op = operation();
        assert_eq!(op.max_busy(), Duration::from_millis(300));
        assert_eq!(op.avg_busy(), Duration::from_millis(200));
        assert!((op.busy_imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn secondary_ratio() {
        let op = operation();
        assert!((op.secondary_consumption_ratio() - 2.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_operation_is_balanced() {
        let op = OperationMetrics {
            node: NodeId(1),
            name: "store".into(),
            strategy: ConsumptionStrategy::Lpt,
            queues: 0,
            threads: vec![],
        };
        assert_eq!(op.busy_imbalance(), 1.0);
        assert_eq!(op.secondary_consumption_ratio(), 0.0);
        assert_eq!(op.avg_busy(), Duration::ZERO);
    }

    #[test]
    fn execution_metrics_aggregation() {
        let m = ExecutionMetrics {
            elapsed: Duration::from_millis(500),
            total_threads: 2,
            operations: vec![operation()],
            caches: CacheStats::default(),
        };
        assert_eq!(m.total_activations(), 40);
        assert!(m.operation(NodeId(0)).is_some());
        assert!(m.operation(NodeId(9)).is_none());
        assert!((m.worst_imbalance() - 1.5).abs() < 1e-9);
    }
}
