//! # dbs3-engine
//!
//! The adaptive parallel execution engine of DBS3 — the paper's primary
//! contribution (Sections 2–3).
//!
//! The engine combines **static partitioning** with **dynamic processor
//! allocation**:
//!
//! * every operation of the extended plan has one *instance* per fragment,
//!   and every instance owns a FIFO **activation queue** ([`queue`]);
//! * a **pool of threads** is allocated to the whole operation, independent
//!   of the number of instances ([`executor`]); the queues live in shared
//!   memory so any thread of the pool can consume any activation;
//! * queues are split into **main** and **secondary** queues per thread to
//!   limit access conflicts: a thread first drains its main queues and only
//!   then looks at the others ([`strategy`]);
//! * a producer-side **internal activation cache** batches outgoing tuples
//!   per destination and flushes each buffer as one [`TupleBatch`] transport
//!   activation, so `CacheSize` tuples cross the queue under a single lock
//!   acquisition (implemented by the runtime's scatter buffers; metrics
//!   still count the paper's logical per-tuple activations, see
//!   [`activation`]);
//! * two **consumption strategies** are provided, `Random` (default) and
//!   `LPT` (longest processing time first) for skewed triggered operations;
//! * the **scheduler** ([`schedule`]) fixes `ThreadNb`, `QueueNb`,
//!   `CacheSize` and `Strategy` for every operation following the four-step
//!   top-down approach of Figure 5, using the analytic thread-allocation
//!   solver of [`dbs3_model`];
//! * the **runtime** ([`runtime`]) owns the worker threads: a persistent
//!   shared pool, spawned once and parked on a condvar when idle, that
//!   executes any number of concurrently submitted queries — each tagged
//!   with a [`QueryId`] and observed through a [`QueryHandle`]
//!   (`wait`/`try_outcome`/`cancel`). The blocking [`Executor`] is a thin
//!   wrapper that runs one query on a transient pool.
//!
//! The engine executes plans with real OS threads and produces both the
//! query result and detailed [`metrics`] (per-thread busy time, activation
//! counts, queue contention) used by the experiments.

pub mod activation;
pub mod cache;
pub mod error;
pub mod executor;
pub mod faults;
pub mod metrics;
pub mod operators;
pub mod queue;
pub mod runtime;
pub mod schedule;
pub mod strategy;
pub mod sync;

pub use activation::{Activation, TupleBatch};
pub use cache::{cache_stats, clear_caches, prepare, CacheCounters, CacheStats, PreparedPlan};
pub use error::EngineError;
pub use executor::{ExecutionOutcome, Executor};
pub use faults::{FaultAction, FaultGuard, FaultPlan, FaultRule, FaultTrigger};
pub use metrics::{ExecutionMetrics, OperationMetrics};
pub use queue::{ActivationQueue, TryPushError};
pub use runtime::{QueryHandle, QueryId, Runtime};
pub use schedule::{
    ExecutionSchedule, OperationSchedule, Scheduler, SchedulerOptions, DEFAULT_MORSEL_ROWS,
};
pub use strategy::ConsumptionStrategy;
pub use sync::CachePadded;

/// Convenient `Result` alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
