//! The blocking single-query executor: a thin wrapper over the shared-pool
//! [`Runtime`].
//!
//! Historically this module owned the whole parallel execution: it spawned
//! one scoped OS thread pool per *operation* and joined them all at the end
//! of every query. That inverted the paper's model at the API boundary —
//! DBS3 keeps a fixed pool alive and schedules *activations*, not threads.
//! Execution now lives in [`crate::runtime`]: [`Executor::execute`] builds
//! the query exactly as before (bind operators, create one activation queue
//! per operation instance, inject triggers), hands it to the process-wide
//! [`Runtime::shared`] pool sized to the schedule's total thread count, and
//! blocks on the query's completion. The pool is spawned on the first
//! execution at that width and reused for every later one — spawning and
//! joining `n` OS threads per blocking call used to rival the cost of a
//! paper-scale query itself. Semantics are unchanged — same results, same
//! logical activation counts, same per-operation metrics shape — while the
//! execution machinery (condvar parking, cooperative backpressure,
//! cancellation) is shared with the persistent multi-query runtime.
//!
//! Callers that want the pool to outlive one query use
//! [`Runtime`] directly (or the facade's
//! `Backend::Pooled` / `Query::submit`).

use crate::metrics::ExecutionMetrics;
use crate::runtime::Runtime;
use crate::schedule::ExecutionSchedule;
use crate::Result;
use dbs3_lera::{CostParameters, Plan};
use dbs3_storage::{Catalog, Tuple};
use std::collections::BTreeMap;

/// The result of a query execution.
#[derive(Debug)]
pub struct ExecutionOutcome {
    /// Materialised results, keyed by the store operator's result name.
    /// Empty per store when the schedule discards results
    /// ([`ExecutionSchedule::discard_results`]).
    pub results: BTreeMap<String, Vec<Tuple>>,
    /// Exact result cardinality per store name, filled in every mode —
    /// counting stores tally tuples they never materialise.
    pub cardinalities: BTreeMap<String, usize>,
    /// Execution metrics.
    pub metrics: ExecutionMetrics,
}

impl ExecutionOutcome {
    /// The single result of a plan with exactly one store operator.
    pub fn result(&self) -> Option<&Vec<Tuple>> {
        if self.results.len() == 1 {
            self.results.values().next()
        } else {
            None
        }
    }
}

/// Executes plans against a catalog, blocking until completion.
#[derive(Debug)]
pub struct Executor<'a> {
    catalog: &'a Catalog,
    cost_params: CostParameters,
}

impl<'a> Executor<'a> {
    /// Creates an executor over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Executor {
            catalog,
            cost_params: CostParameters::default(),
        }
    }

    /// Overrides the cost parameters used when expanding the plan (they only
    /// influence the static cost estimates attached to queues, i.e. the LPT
    /// order).
    pub fn with_cost_parameters(mut self, params: CostParameters) -> Self {
        self.cost_params = params;
        self
    }

    /// Executes `plan` under `schedule` and returns the materialised results
    /// and metrics.
    ///
    /// Runs on the lazily-initialized process-wide [`Runtime::shared`] pool
    /// with the schedule's total thread count — "`n` scheduled threads = `n`
    /// pool workers" still holds, but repeated executions at the same width
    /// reuse one pool instead of paying a spawn/join round trip per call.
    /// Concurrent `execute` calls at the same width share that pool (the
    /// runtime schedules their activations side by side).
    pub fn execute(&self, plan: &Plan, schedule: &ExecutionSchedule) -> Result<ExecutionOutcome> {
        schedule.validate(plan)?;
        let runtime = Runtime::shared(schedule.total_threads().max(1))?;
        runtime
            .submit_with(self.catalog, plan, schedule, &self.cost_params)?
            .wait()
    }

    /// Executes a plan prepared by [`crate::cache::prepare`], blocking until
    /// completion. Skips expansion and scheduling entirely — the hot path
    /// for repeated queries. Fails with a plan error if the catalog mutated
    /// since preparation (re-prepare and retry).
    pub fn execute_prepared(
        &self,
        prepared: &crate::cache::PreparedPlan,
    ) -> Result<ExecutionOutcome> {
        let runtime = Runtime::shared(prepared.schedule().total_threads().max(1))?;
        runtime.submit_prepared(self.catalog, prepared)?.wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Scheduler, SchedulerOptions};
    use crate::strategy::ConsumptionStrategy;
    use dbs3_lera::{plans, ExtendedPlan, JoinAlgorithm, Predicate};
    use dbs3_storage::{
        PartitionSpec, PartitionedRelation, Relation, WisconsinConfig, WisconsinGenerator,
    };
    use std::sync::Arc;
    use std::time::Duration;

    fn build_catalog(
        a_card: usize,
        b_card: usize,
        degree: usize,
        skew: f64,
    ) -> (Catalog, Relation, Relation) {
        let gen = WisconsinGenerator::new();
        let a = gen.generate(&WisconsinConfig::narrow("A", a_card)).unwrap();
        let b = gen
            .generate(&WisconsinConfig::narrow("Bprime", b_card))
            .unwrap();
        let spec = PartitionSpec::on("unique1", degree, 4);
        let a_part = if skew > 0.0 {
            PartitionedRelation::from_relation_with_skew(&a, spec.clone(), skew).unwrap()
        } else {
            PartitionedRelation::from_relation(&a, spec.clone()).unwrap()
        };
        // Reference relations must reflect what is actually stored (skewed
        // partitioning re-keys tuples), so reassemble from the partitions.
        let a_ref = a_part.reassemble();
        let b_part = PartitionedRelation::from_relation(&b, spec).unwrap();
        let b_ref = b_part.reassemble();
        let mut cat = Catalog::new();
        cat.register(a_part).unwrap();
        cat.register(b_part).unwrap();
        (cat, a_ref, b_ref)
    }

    fn schedule_for(plan: &Plan, cat: &Catalog, threads: usize) -> ExecutionSchedule {
        let ext = ExtendedPlan::from_plan(plan, cat, &CostParameters::default()).unwrap();
        Scheduler::build(
            plan,
            &ext,
            &SchedulerOptions::default().with_total_threads(threads),
        )
        .unwrap()
    }

    #[test]
    fn ideal_join_produces_reference_result() {
        let (cat, a_ref, b_ref) = build_catalog(800, 80, 10, 0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 4);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
        assert_eq!(outcome.cardinalities["Result"], expected.len());
        assert!(outcome.metrics.total_activations() > 0);
    }

    #[test]
    fn assoc_join_produces_reference_result() {
        let (cat, a_ref, b_ref) = build_catalog(600, 60, 8, 0.0);
        let plan = plans::assoc_join("Bprime", "A", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 6);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = b_ref.reference_join(&a_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
        // The pipelined join received one data activation per B' tuple.
        let join_metrics = outcome.metrics.operation(dbs3_lera::NodeId(1)).unwrap();
        assert_eq!(join_metrics.total_activations(), 60);
    }

    #[test]
    fn filter_join_respects_predicate() {
        let (cat, a_ref, b_ref) = build_catalog(500, 500, 6, 0.0);
        let plan = plans::filter_join(
            "A",
            Predicate::range("unique1", 0, 100),
            "Bprime",
            "unique1",
            JoinAlgorithm::NestedLoop,
        );
        let schedule = schedule_for(&plan, &cat, 3);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let filtered = a_ref.reference_select(|t| {
            let v = t.value(0).as_int().unwrap();
            (0..100).contains(&v)
        });
        let filtered_rel = Relation::new("Af", a_ref.schema().clone(), filtered).unwrap();
        let expected = filtered_rel
            .reference_join(&b_ref, "unique1", "unique1")
            .unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
    }

    #[test]
    fn selection_stores_matching_tuples() {
        let (cat, a_ref, _) = build_catalog(1000, 10, 10, 0.0);
        let plan = plans::selection("A", Predicate::one_in("ten", 10), "Selected");
        let schedule = schedule_for(&plan, &cat, 4);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = a_ref.reference_select(|t| t.value(4).as_int().unwrap() == 0);
        assert_eq!(outcome.results["Selected"].len(), expected.len());
        assert!(outcome.result().is_some());
    }

    #[test]
    fn skewed_ideal_join_with_lpt_matches_reference() {
        let (cat, a_ref, b_ref) = build_catalog(1000, 100, 20, 1.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::NestedLoop);
        let schedule = schedule_for(&plan, &cat, 5).with_strategy(ConsumptionStrategy::Lpt);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
    }

    #[test]
    fn single_thread_execution_works() {
        let (cat, a_ref, b_ref) = build_catalog(300, 30, 5, 0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::TempIndex);
        let schedule = schedule_for(&plan, &cat, 1);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
    }

    #[test]
    fn more_threads_than_instances_still_correct() {
        let (cat, a_ref, b_ref) = build_catalog(200, 20, 3, 0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 12);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
    }

    #[test]
    fn metrics_report_queue_and_thread_structure() {
        let (cat, _, _) = build_catalog(400, 40, 8, 0.0);
        let plan = plans::assoc_join("Bprime", "A", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 4);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let m = &outcome.metrics;
        assert_eq!(m.operations.len(), 3);
        for op in &m.operations {
            assert_eq!(op.queues, 8);
            assert!(!op.threads.is_empty());
        }
        assert!(m.elapsed > Duration::ZERO);
        assert!(m.worst_imbalance() >= 1.0);
    }

    #[test]
    fn repeated_executions_reuse_one_shared_pool() {
        let (cat, a_ref, b_ref) = build_catalog(400, 40, 6, 0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        // Width 7 is used by no other test in this binary: the final
        // live_queries() == 0 assertion must not race a concurrently
        // running test whose execute() shares the same process-wide pool.
        let schedule = schedule_for(&plan, &cat, 7);
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        // The registry hands back the same runtime for the same width...
        let first = Runtime::shared(7).unwrap();
        let second = Runtime::shared(7).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_ne!(
            first.pool_threads(),
            Runtime::shared(2).unwrap().pool_threads()
        );
        // ...and back-to-back executions over it stay correct.
        for _ in 0..3 {
            let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
            assert_eq!(outcome.results["Result"].len(), expected.len());
        }
        assert_eq!(first.live_queries(), 0);
    }

    #[test]
    fn prepared_execution_matches_cold_execution() {
        let (cat, a_ref, b_ref) = build_catalog(500, 50, 6, 0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let options = SchedulerOptions::default().with_total_threads(3);
        let prepared =
            crate::cache::prepare(&cat, &plan, &options, &CostParameters::default()).unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        for _ in 0..2 {
            let outcome = Executor::new(&cat).execute_prepared(&prepared).unwrap();
            assert_eq!(outcome.results["Result"].len(), expected.len());
        }
        // A catalog mutation makes the preparation stale: typed error, and
        // a fresh preparation works again.
        let mut mutated = cat.clone();
        mutated.replace(
            PartitionedRelation::from_relation(&a_ref, PartitionSpec::on("unique1", 6, 4)).unwrap(),
        );
        assert!(Executor::new(&mutated).execute_prepared(&prepared).is_err());
        let fresh =
            crate::cache::prepare(&mutated, &plan, &options, &CostParameters::default()).unwrap();
        let outcome = Executor::new(&mutated).execute_prepared(&fresh).unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
    }

    #[test]
    fn discarded_results_report_cardinalities_only() {
        let (cat, a_ref, b_ref) = build_catalog(600, 60, 8, 0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 4).with_discard_results(true);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.cardinalities["Result"], expected.len());
        assert!(outcome.results["Result"].is_empty());
        assert!(outcome.metrics.total_activations() > 0);
    }
}
