//! The parallel executor: thread pools consuming activation queues.
//!
//! The executor turns an extended plan into the runtime structure of
//! Figure 4 — one activation queue per operation instance, one pool of
//! threads per operation — and runs it with real OS threads:
//!
//! 1. operators are *bound*: relation names become `Arc<PartitionedRelation>`
//!    fragments, predicate columns become indexes;
//! 2. triggered operations get one control activation per queue and their
//!    queues are closed immediately (no more activations will ever arrive);
//! 3. every pool's threads repeatedly select a queue (main queues first,
//!    then secondary, ordered by the pool's consumption strategy), pop a
//!    batch of activations, execute the operator's database function on each
//!    whole tuple batch, and scatter the produced output batch to the
//!    consumer operation's queues through a producer-side internal cache
//!    that flushes `CacheSize`-tuple transport batches (metrics still count
//!    the paper's logical per-tuple activations, see [`crate::activation`]);
//! 4. when the last thread of a producer pool terminates it closes the
//!    consumer's queues, which lets the consumer's threads terminate once
//!    they have drained them — termination cascades down the pipeline.

use crate::activation::Activation;
use crate::cache::OutputCache;
use crate::error::EngineError;
use crate::metrics::{ExecutionMetrics, OperationMetrics, ThreadMetrics};
use crate::operators::{
    BoundOperator, FilterOperator, PipelinedJoinOperator, StoreOperator, TransmitOperator,
    TriggeredJoinOperator,
};
use crate::queue::ActivationQueue;
use crate::schedule::ExecutionSchedule;
use crate::strategy::{main_queue_assignment, QueueSelector};
use crate::Result;
use dbs3_lera::{CostParameters, ExtendedPlan, OperatorKind, OuterInput, Plan};
use dbs3_storage::{Catalog, Tuple};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How data activations produced by one operation find the consumer
/// instance's queue.
#[derive(Debug, Clone)]
enum Router {
    /// Hash the given column of the produced tuple over the consumer's
    /// degree — this is the dynamic redistribution of `Transmit`/pipelined
    /// joins, and it matches the static partitioning function exactly.
    HashColumn { column: usize, degree: usize },
    /// Keep the producing instance (result fragments are co-located with the
    /// producing join instances).
    SameInstance,
}

impl Router {
    /// Scatters a whole output batch into the per-destination buffers of the
    /// producer's internal cache in one pass. `HashColumn` hashes each tuple
    /// to its consumer instance (the dynamic redistribution); `SameInstance`
    /// moves the entire batch to the co-located instance without touching a
    /// single tuple.
    fn scatter(&self, producing_instance: usize, batch: Vec<Tuple>, cache: &mut OutputCache) {
        match self {
            Router::HashColumn { column, degree } => {
                let key = [*column];
                for tuple in batch {
                    let target = (tuple.hash_key(&key) % *degree as u64) as usize;
                    cache.produce(target, tuple);
                }
            }
            Router::SameInstance => cache.produce_all(producing_instance, batch),
        }
    }
}

/// A link from a producer operation to its consumer.
#[derive(Debug, Clone)]
struct ConsumerLink {
    consumer_index: usize,
    router: Router,
}

/// Runtime state of one operation.
struct OperationRuntime {
    node: dbs3_lera::NodeId,
    name: String,
    operator: Arc<BoundOperator>,
    queues: Vec<Arc<ActivationQueue>>,
    schedule: crate::schedule::OperationSchedule,
    consumer: Option<ConsumerLink>,
    /// Number of producer threads that have not terminated yet; when it
    /// reaches zero this operation's queues are closed. Triggered operations
    /// start at zero (their queues are closed right after trigger injection).
    open_producers: Arc<AtomicUsize>,
}

/// The result of a query execution.
#[derive(Debug)]
pub struct ExecutionOutcome {
    /// Materialised results, keyed by the store operator's result name.
    pub results: BTreeMap<String, Vec<Tuple>>,
    /// Execution metrics.
    pub metrics: ExecutionMetrics,
}

impl ExecutionOutcome {
    /// The single result of a plan with exactly one store operator.
    pub fn result(&self) -> Option<&Vec<Tuple>> {
        if self.results.len() == 1 {
            self.results.values().next()
        } else {
            None
        }
    }
}

/// Executes plans against a catalog.
#[derive(Debug)]
pub struct Executor<'a> {
    catalog: &'a Catalog,
    cost_params: CostParameters,
}

impl<'a> Executor<'a> {
    /// Creates an executor over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Executor {
            catalog,
            cost_params: CostParameters::default(),
        }
    }

    /// Overrides the cost parameters used when expanding the plan (they only
    /// influence the static cost estimates attached to queues, i.e. the LPT
    /// order).
    pub fn with_cost_parameters(mut self, params: CostParameters) -> Self {
        self.cost_params = params;
        self
    }

    /// Executes `plan` under `schedule` and returns the materialised results
    /// and metrics.
    pub fn execute(&self, plan: &Plan, schedule: &ExecutionSchedule) -> Result<ExecutionOutcome> {
        let extended = ExtendedPlan::from_plan(plan, self.catalog, &self.cost_params)?;
        schedule.validate(plan)?;
        if !plan
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OperatorKind::Store { .. }))
        {
            return Err(EngineError::NoStoreOperator);
        }

        let order = plan.topological_order()?;
        let mut runtimes: Vec<OperationRuntime> = Vec::with_capacity(plan.len());
        let mut index_of: BTreeMap<dbs3_lera::NodeId, usize> = BTreeMap::new();
        let mut stores: Vec<(String, Arc<BoundOperator>)> = Vec::new();

        // Bind operators and create queues, producers before consumers.
        for id in &order {
            let node = plan.node(*id)?;
            let ext_op = extended
                .operation(*id)
                .expect("extended plan covers every node");
            let op_schedule = schedule.operation(*id)?;

            let operator = Arc::new(self.bind_operator(plan, node, ext_op.instance_count())?);
            if let OperatorKind::Store { result_name } = &node.kind {
                stores.push((result_name.clone(), Arc::clone(&operator)));
            }

            let queues: Vec<Arc<ActivationQueue>> = ext_op
                .instances()
                .iter()
                .map(|info| {
                    Arc::new(ActivationQueue::new(
                        info.instance,
                        op_schedule.queue_capacity,
                        info.estimated_cost,
                    ))
                })
                .collect();

            index_of.insert(*id, runtimes.len());
            runtimes.push(OperationRuntime {
                node: *id,
                name: node.name.clone(),
                operator,
                queues,
                schedule: op_schedule,
                consumer: None,
                open_producers: Arc::new(AtomicUsize::new(0)),
            });
        }

        // Wire consumer links and producer counts.
        for id in &order {
            let producer_index = index_of[id];
            let consumers = plan.consumers(*id);
            if let Some(consumer_id) = consumers.first() {
                let consumer_index = index_of[consumer_id];
                let consumer_node = plan.node(*consumer_id)?;
                let router = match consumer_node.kind.routing_column() {
                    Some(col) => {
                        let producer_schema = plan.output_schema(*id, self.catalog)?;
                        let column = producer_schema.column_index(col).map_err(|_| {
                            EngineError::Plan(format!(
                                "routing column `{col}` not found in the output of {}",
                                id
                            ))
                        })?;
                        Router::HashColumn {
                            column,
                            degree: runtimes[consumer_index].queues.len(),
                        }
                    }
                    None => Router::SameInstance,
                };
                runtimes[producer_index].consumer = Some(ConsumerLink {
                    consumer_index,
                    router,
                });
                runtimes[consumer_index]
                    .open_producers
                    .store(runtimes[producer_index].schedule.threads, Ordering::SeqCst);
            }
        }

        // Inject triggers into triggered operations and close their queues.
        for rt in &runtimes {
            let node = plan.node(rt.node)?;
            if node.producer().is_none() {
                for q in &rt.queues {
                    q.push(Activation::Trigger);
                    q.close();
                }
            }
        }

        // Run the pools.
        let started = Instant::now();
        let mut per_op_threads: Vec<Vec<ThreadMetrics>> =
            runtimes.iter().map(|_| Vec::new()).collect();

        let worker_error: std::sync::Mutex<Option<EngineError>> = std::sync::Mutex::new(None);
        std::thread::scope(|scope| {
            let mut handles: Vec<(usize, std::thread::ScopedJoinHandle<'_, ThreadMetrics>)> =
                Vec::new();
            for (op_index, rt) in runtimes.iter().enumerate() {
                let assignment = main_queue_assignment(rt.queues.len(), rt.schedule.threads);
                for (thread_index, main_queues) in assignment.into_iter().enumerate() {
                    let queues = rt.queues.clone();
                    let operator = Arc::clone(&rt.operator);
                    let consumer = rt.consumer.clone();
                    let consumer_queues = consumer
                        .as_ref()
                        .map(|link| runtimes[link.consumer_index].queues.clone());
                    let consumer_open_producers = consumer
                        .as_ref()
                        .map(|link| Arc::clone(&runtimes[link.consumer_index].open_producers));
                    let op_schedule = rt.schedule;
                    let seed = (op_index as u64) << 32 | thread_index as u64;

                    let handle = scope.spawn(move || {
                        run_worker(
                            thread_index,
                            queues,
                            main_queues,
                            operator,
                            op_schedule,
                            consumer.map(|link| link.router),
                            consumer_queues,
                            consumer_open_producers,
                            seed,
                        )
                    });
                    handles.push((op_index, handle));
                }
            }
            for (op_index, handle) in handles {
                match handle.join() {
                    Ok(tm) => per_op_threads[op_index].push(tm),
                    Err(_) => {
                        let mut slot = worker_error.lock().unwrap();
                        *slot = Some(EngineError::WorkerPanicked {
                            operation: runtimes[op_index].name.clone(),
                        });
                    }
                }
            }
        });
        if let Some(err) = worker_error.into_inner().unwrap() {
            return Err(err);
        }
        let elapsed = started.elapsed();

        // Collect metrics and results.
        let operations = runtimes
            .iter()
            .zip(per_op_threads)
            .map(|(rt, threads)| OperationMetrics {
                node: rt.node,
                name: rt.name.clone(),
                strategy: rt.schedule.strategy,
                queues: rt.queues.len(),
                threads,
            })
            .collect();
        let metrics = ExecutionMetrics {
            elapsed,
            total_threads: schedule.total_threads(),
            operations,
        };

        let mut results = BTreeMap::new();
        for (name, op) in stores {
            if let BoundOperator::Store(store) = op.as_ref() {
                results.insert(name, store.take_all());
            }
        }

        Ok(ExecutionOutcome { results, metrics })
    }

    /// Binds a plan node to a physical operator over catalog fragments.
    fn bind_operator(
        &self,
        plan: &Plan,
        node: &dbs3_lera::OperatorNode,
        instance_count: usize,
    ) -> Result<BoundOperator> {
        match &node.kind {
            OperatorKind::Filter {
                relation,
                predicate,
            } => {
                let rel = self.catalog.get(relation)?;
                let bound = predicate.bind(relation, rel.schema())?;
                Ok(BoundOperator::Filter(FilterOperator::new(rel, bound)))
            }
            OperatorKind::Transmit { relation, .. } => {
                let rel = self.catalog.get(relation)?;
                Ok(BoundOperator::Transmit(TransmitOperator::new(rel)))
            }
            OperatorKind::Join {
                outer,
                inner_relation,
                condition,
                algorithm,
            } => {
                let inner = self.catalog.get(inner_relation)?;
                let inner_column = inner.schema().column_index(&condition.inner_column)?;
                match outer {
                    OuterInput::Fragment { relation } => {
                        let outer_rel = self.catalog.get(relation)?;
                        let outer_column =
                            outer_rel.schema().column_index(&condition.outer_column)?;
                        Ok(BoundOperator::TriggeredJoin(TriggeredJoinOperator::new(
                            outer_rel,
                            inner,
                            outer_column,
                            inner_column,
                            *algorithm,
                        )))
                    }
                    OuterInput::Pipeline => {
                        let producer = node.producer().expect("validated");
                        let incoming_schema = plan.output_schema(producer, self.catalog)?;
                        let outer_column = incoming_schema.column_index(&condition.outer_column)?;
                        Ok(BoundOperator::PipelinedJoin(PipelinedJoinOperator::new(
                            inner,
                            outer_column,
                            inner_column,
                            *algorithm,
                        )))
                    }
                }
            }
            OperatorKind::Store { result_name } => Ok(BoundOperator::Store(StoreOperator::new(
                result_name.clone(),
                instance_count,
            ))),
        }
    }
}

/// The body of one worker thread of an operation pool.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    thread_index: usize,
    queues: Vec<Arc<ActivationQueue>>,
    main_queues: Vec<usize>,
    operator: Arc<BoundOperator>,
    schedule: crate::schedule::OperationSchedule,
    router: Option<Router>,
    consumer_queues: Option<Vec<Arc<ActivationQueue>>>,
    consumer_open_producers: Option<Arc<AtomicUsize>>,
    seed: u64,
) -> ThreadMetrics {
    let main_set: std::collections::HashSet<usize> = main_queues.iter().copied().collect();
    let mut selector = QueueSelector::new(queues, main_queues, schedule.strategy, seed);
    let consumer_queues_for_close = consumer_queues.clone();
    let mut cache = consumer_queues.map(|dest| OutputCache::new(dest, schedule.cache_size));
    let mut metrics = ThreadMetrics {
        thread: thread_index,
        ..ThreadMetrics::default()
    };
    // Consecutive empty polls in the current idle streak (drives backoff).
    let mut idle_streak = 0u32;

    loop {
        match selector.select_and_pop(schedule.cache_size) {
            Some((queue_index, batch)) => {
                idle_streak = 0;
                let logical: u64 = batch.iter().map(|a| a.logical_len() as u64).sum();
                if main_set.contains(&queue_index) {
                    metrics.main_queue_hits += logical;
                } else {
                    metrics.secondary_queue_hits += logical;
                }
                let started = Instant::now();
                for activation in batch {
                    // Metrics stay in the paper's per-tuple model: a data
                    // activation counts one logical activation per batched
                    // tuple, independent of the transport granularity.
                    metrics.activations += activation.logical_len() as u64;
                    let out = operator.process(queue_index, activation);
                    metrics.tuples_out += out.len() as u64;
                    if let (Some(cache), Some(router)) = (cache.as_mut(), router.as_ref()) {
                        router.scatter(queue_index, out, cache);
                    }
                }
                metrics.busy += started.elapsed();
            }
            None => {
                if selector.all_exhausted() {
                    break;
                }
                metrics.idle_polls += 1;
                // Back off gradually: yield first (upstream batches usually
                // land within microseconds), then sleep, so an idle pool
                // neither burns a core nor adds a fixed 200 µs of latency to
                // every pipeline stage transition.
                idle_streak = idle_streak.saturating_add(1);
                if idle_streak <= 8 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    if let Some(cache) = cache.as_mut() {
        cache.flush_all();
        metrics.cache_flushes = cache.flushes();
    }
    // This thread is done producing: if it was the last producer thread of
    // the consumer operation, close the consumer's queues so its threads can
    // terminate once they drain them. Every producer thread flushes its own
    // internal cache before reaching this point, so no activation is lost.
    if let Some(open) = consumer_open_producers {
        if open.fetch_sub(1, Ordering::SeqCst) == 1 {
            if let Some(queues) = consumer_queues_for_close {
                for q in queues {
                    q.close();
                }
            }
        }
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Scheduler, SchedulerOptions};
    use crate::strategy::ConsumptionStrategy;
    use dbs3_lera::{plans, JoinAlgorithm, Predicate};
    use dbs3_storage::{
        PartitionSpec, PartitionedRelation, Relation, WisconsinConfig, WisconsinGenerator,
    };

    fn build_catalog(
        a_card: usize,
        b_card: usize,
        degree: usize,
        skew: f64,
    ) -> (Catalog, Relation, Relation) {
        let gen = WisconsinGenerator::new();
        let a = gen.generate(&WisconsinConfig::narrow("A", a_card)).unwrap();
        let b = gen
            .generate(&WisconsinConfig::narrow("Bprime", b_card))
            .unwrap();
        let spec = PartitionSpec::on("unique1", degree, 4);
        let a_part = if skew > 0.0 {
            PartitionedRelation::from_relation_with_skew(&a, spec.clone(), skew).unwrap()
        } else {
            PartitionedRelation::from_relation(&a, spec.clone()).unwrap()
        };
        // Reference relations must reflect what is actually stored (skewed
        // partitioning re-keys tuples), so reassemble from the partitions.
        let a_ref = a_part.reassemble();
        let b_part = PartitionedRelation::from_relation(&b, spec).unwrap();
        let b_ref = b_part.reassemble();
        let mut cat = Catalog::new();
        cat.register(a_part).unwrap();
        cat.register(b_part).unwrap();
        (cat, a_ref, b_ref)
    }

    fn schedule_for(plan: &Plan, cat: &Catalog, threads: usize) -> ExecutionSchedule {
        let ext = ExtendedPlan::from_plan(plan, cat, &CostParameters::default()).unwrap();
        Scheduler::build(
            plan,
            &ext,
            &SchedulerOptions::default().with_total_threads(threads),
        )
        .unwrap()
    }

    #[test]
    fn ideal_join_produces_reference_result() {
        let (cat, a_ref, b_ref) = build_catalog(800, 80, 10, 0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 4);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
        assert!(outcome.metrics.total_activations() > 0);
    }

    #[test]
    fn assoc_join_produces_reference_result() {
        let (cat, a_ref, b_ref) = build_catalog(600, 60, 8, 0.0);
        let plan = plans::assoc_join("Bprime", "A", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 6);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = b_ref.reference_join(&a_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
        // The pipelined join received one data activation per B' tuple.
        let join_metrics = outcome.metrics.operation(dbs3_lera::NodeId(1)).unwrap();
        assert_eq!(join_metrics.total_activations(), 60);
    }

    #[test]
    fn filter_join_respects_predicate() {
        let (cat, a_ref, b_ref) = build_catalog(500, 500, 6, 0.0);
        let plan = plans::filter_join(
            "A",
            Predicate::range("unique1", 0, 100),
            "Bprime",
            "unique1",
            JoinAlgorithm::NestedLoop,
        );
        let schedule = schedule_for(&plan, &cat, 3);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let filtered = a_ref.reference_select(|t| {
            let v = t.value(0).as_int().unwrap();
            (0..100).contains(&v)
        });
        let filtered_rel = Relation::new("Af", a_ref.schema().clone(), filtered).unwrap();
        let expected = filtered_rel
            .reference_join(&b_ref, "unique1", "unique1")
            .unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
    }

    #[test]
    fn selection_stores_matching_tuples() {
        let (cat, a_ref, _) = build_catalog(1000, 10, 10, 0.0);
        let plan = plans::selection("A", Predicate::one_in("ten", 10), "Selected");
        let schedule = schedule_for(&plan, &cat, 4);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = a_ref.reference_select(|t| t.value(4).as_int().unwrap() == 0);
        assert_eq!(outcome.results["Selected"].len(), expected.len());
        assert!(outcome.result().is_some());
    }

    #[test]
    fn skewed_ideal_join_with_lpt_matches_reference() {
        let (cat, a_ref, b_ref) = build_catalog(1000, 100, 20, 1.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::NestedLoop);
        let schedule = schedule_for(&plan, &cat, 5).with_strategy(ConsumptionStrategy::Lpt);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
    }

    #[test]
    fn single_thread_execution_works() {
        let (cat, a_ref, b_ref) = build_catalog(300, 30, 5, 0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::TempIndex);
        let schedule = schedule_for(&plan, &cat, 1);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
    }

    #[test]
    fn more_threads_than_instances_still_correct() {
        let (cat, a_ref, b_ref) = build_catalog(200, 20, 3, 0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 12);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
    }

    #[test]
    fn metrics_report_queue_and_thread_structure() {
        let (cat, _, _) = build_catalog(400, 40, 8, 0.0);
        let plan = plans::assoc_join("Bprime", "A", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 4);
        let outcome = Executor::new(&cat).execute(&plan, &schedule).unwrap();
        let m = &outcome.metrics;
        assert_eq!(m.operations.len(), 3);
        for op in &m.operations {
            assert_eq!(op.queues, 8);
            assert!(!op.threads.is_empty());
        }
        assert!(m.elapsed > Duration::ZERO);
        assert!(m.worst_imbalance() >= 1.0);
    }
}
