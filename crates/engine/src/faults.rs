//! Deterministic, seeded fault injection.
//!
//! A process-wide registry of named **fault points**. Production code calls
//! [`hit`] at each point; when no plan is installed that is a single relaxed
//! atomic load and an immediate `None`. Tests, the chaos harness and
//! `dbs3-serve --fault` install a [`FaultPlan`] — a seed plus a list of
//! [`FaultRule`]s — and the same seed always reproduces the same per-point
//! decision sequence: probabilistic triggers hash `(seed, rule, hit-index)`
//! through SplitMix64 instead of consulting a shared mutable RNG, so the
//! decision for the N-th hit of a point does not depend on thread
//! interleaving.
//!
//! Because the registry is process-wide, [`FaultPlan::install`] serializes
//! installers behind a static lock and returns a [`FaultGuard`] that
//! uninstalls on drop. Tests that inject faults must therefore live in
//! dedicated integration-test binaries (their own process) — see
//! `crates/engine/tests/faults.rs` and `crates/serve/tests/chaos.rs`.
//!
//! ## Fault-point catalog
//!
//! The canonical list is the [`REGISTRY`] table below — `dbs3-serve --help`
//! and the static analyzer's `fault-registry` rule both derive from it, so
//! a point that exists anywhere else is a build failure, not a typo that
//! silently tests nothing.
//!
//! | point                   | location                         | honored actions |
//! |-------------------------|----------------------------------|-----------------|
//! | `engine.worker.process` | worker activation processing     | all             |
//! | `engine.queue.push`     | `ActivationQueue::try_push`      | panic, delay (error/drop escalate to panic) |
//! | `engine.runtime.submit` | `Runtime::submit`                | error, drop → typed error; delay; panic |
//! | `serve.accept`          | accept loop (dbs3-serve)         | drop/error close the connection; delay; panic |
//! | `serve.read`            | request frame read (dbs3-serve)  | drop/error close the connection; delay; panic |
//! | `serve.write`           | response frame write (dbs3-serve)| drop/error close the connection; delay; panic |
//! | `engine.cache.lookup`   | prepared-plan / index cache lookup | error, drop → bypass the cache (compute uncached); delay; panic |
//! | `engine.cache.build`    | shared hash-index build (cache-owned) | panic, delay (error/drop escalate to panic) |
//!
//! `engine.queue.push` escalates `error`/`drop` to a panic on purpose:
//! silently dropping an activation would corrupt results, and the panic is
//! contained by the worker's `catch_unwind` into a typed
//! [`WorkerPanicked`](crate::EngineError::WorkerPanicked) — faults may fail
//! queries, never falsify them.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Canonical fault-point names for the whole workspace. The serve layer
/// re-exports its three under `dbs3_serve::server::fault_points` — the
/// strings live here so [`REGISTRY`] is the single source of truth.
pub mod points {
    /// A worker about to process a batch of activations for an operator.
    pub const WORKER_PROCESS: &str = "engine.worker.process";
    /// An activation batch about to be pushed into an [`crate::ActivationQueue`].
    pub const QUEUE_PUSH: &str = "engine.queue.push";
    /// A plan about to be submitted to the [`crate::Runtime`].
    pub const RUNTIME_SUBMIT: &str = "engine.runtime.submit";
    /// A listener about to accept a connection (dbs3-serve).
    pub const SERVE_ACCEPT: &str = "serve.accept";
    /// A session thread about to read a request frame (dbs3-serve).
    pub const SERVE_READ: &str = "serve.read";
    /// A session thread about to write a response frame (dbs3-serve).
    pub const SERVE_WRITE: &str = "serve.write";
    /// A query-setup cache lookup (prepared plans / shared indexes). Firing
    /// `error`/`drop` here bypasses the cache — correct, just slower.
    pub const CACHE_LOOKUP: &str = "engine.cache.lookup";
    /// A cache-owned shared hash-index build about to run. Everything but
    /// `delay` escalates to a panic (waiters fall back to private builds).
    pub const CACHE_BUILD: &str = "engine.cache.build";
}

/// One registered fault point: its canonical name and a one-line summary of
/// where it fires, for `--help` text and operator docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// Canonical dotted name (`layer.component[.event]`).
    pub name: &'static str,
    /// Where in the pipeline the point fires.
    pub doc: &'static str,
}

/// The canonical registry of every fault point in the workspace. CLI
/// parsing ([`FaultPlan::parse_rule`]), `dbs3-serve --help` and the
/// `fault-registry` static-analysis rule all derive from this table;
/// adding a point anywhere else fails `dbs3-analyze`.
pub const REGISTRY: &[FaultPoint] = &[
    FaultPoint {
        name: points::WORKER_PROCESS,
        doc: "worker about to process an activation batch",
    },
    FaultPoint {
        name: points::QUEUE_PUSH,
        doc: "activation batch pushed into an ActivationQueue",
    },
    FaultPoint {
        name: points::RUNTIME_SUBMIT,
        doc: "plan submitted to the Runtime",
    },
    FaultPoint {
        name: points::SERVE_ACCEPT,
        doc: "listener accepting a connection (dbs3-serve)",
    },
    FaultPoint {
        name: points::SERVE_READ,
        doc: "session reading a request frame (dbs3-serve)",
    },
    FaultPoint {
        name: points::SERVE_WRITE,
        doc: "session writing a response frame (dbs3-serve)",
    },
    FaultPoint {
        name: points::CACHE_LOOKUP,
        doc: "query-setup cache lookup (error/drop bypass the cache)",
    },
    FaultPoint {
        name: points::CACHE_BUILD,
        doc: "cache-owned shared hash-index build",
    },
];

/// Whether `point` names an entry of [`REGISTRY`].
pub fn is_registered(point: &str) -> bool {
    REGISTRY.iter().any(|p| p.name == point)
}

/// The registered point names, comma-joined — for error messages and help
/// text.
pub fn registered_points() -> String {
    let names: Vec<&str> = REGISTRY.iter().map(|p| p.name).collect();
    names.join(", ")
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Panic at the fault point (exercises containment paths).
    Panic,
    /// Surface a typed error (`FaultInjected` or point-specific escalation).
    Error,
    /// Sleep for the given duration before proceeding (wedges, slow I/O).
    Delay(Duration),
    /// Drop the work silently where that is safe (connections, frames);
    /// points where a silent drop would corrupt results escalate it.
    Drop,
}

/// When a rule fires, relative to the per-rule hit counter (1-based).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// Fire exactly on the N-th hit.
    Nth(u64),
    /// Fire on every K-th hit (K > 0).
    EveryK(u64),
    /// Fire with probability `p` per hit, decided by hashing
    /// `(plan seed, rule index, hit index)` — deterministic per seed.
    Probability(f64),
}

/// One named fault: a point, a trigger and an action.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Fault-point name this rule matches (exact string equality).
    pub point: String,
    /// When the rule fires.
    pub trigger: FaultTrigger,
    /// What happens when it fires.
    pub action: FaultAction,
}

/// A seed plus a list of rules; install with [`FaultPlan::install`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for all probabilistic triggers in this plan.
    pub seed: u64,
    /// Rules, evaluated in order; the first rule that fires on a hit wins,
    /// but every matching rule's hit counter still advances.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Creates an empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Builder-style rule addition.
    pub fn rule(mut self, point: &str, trigger: FaultTrigger, action: FaultAction) -> Self {
        self.rules.push(FaultRule {
            point: point.to_string(),
            trigger,
            action,
        });
        self
    }

    /// Parses a CLI rule spec: `POINT:TRIGGER:ACTION` where TRIGGER is
    /// `nth=N`, `every=K` or `p=F` and ACTION is `panic`, `error`, `drop`
    /// or `delay=MS`. Example: `serve.write:p=0.1:drop`. POINT must name an
    /// entry of [`REGISTRY`] — a typo'd point would otherwise arm a plan
    /// that never fires.
    pub fn parse_rule(spec: &str) -> Result<FaultRule, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "fault spec `{spec}` must be POINT:TRIGGER:ACTION (e.g. serve.write:p=0.1:drop)"
            ));
        }
        let point = parts[0].trim();
        if !is_registered(point) {
            return Err(format!(
                "unknown fault point `{point}` in `{spec}` (known points: {})",
                registered_points()
            ));
        }
        let trigger = match parts[1].split_once('=') {
            Some(("nth", n)) => FaultTrigger::Nth(
                n.parse::<u64>()
                    .map_err(|_| format!("bad nth count in `{spec}`"))?,
            ),
            Some(("every", k)) => {
                let k = k
                    .parse::<u64>()
                    .map_err(|_| format!("bad every count in `{spec}`"))?;
                if k == 0 {
                    return Err(format!("every=0 never fires in `{spec}`"));
                }
                FaultTrigger::EveryK(k)
            }
            Some(("p", p)) => {
                let p = p
                    .parse::<f64>()
                    .map_err(|_| format!("bad probability in `{spec}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability out of [0,1] in `{spec}`"));
                }
                FaultTrigger::Probability(p)
            }
            _ => {
                return Err(format!(
                    "bad trigger `{}` in `{spec}` (want nth=N, every=K or p=F)",
                    parts[1]
                ))
            }
        };
        let action = match parts[2].split_once('=') {
            None => match parts[2] {
                "panic" => FaultAction::Panic,
                "error" => FaultAction::Error,
                "drop" => FaultAction::Drop,
                other => {
                    return Err(format!(
                        "bad action `{other}` in `{spec}` (want panic, error, drop or delay=MS)"
                    ))
                }
            },
            Some(("delay", ms)) => FaultAction::Delay(Duration::from_millis(
                ms.parse::<u64>()
                    .map_err(|_| format!("bad delay in `{spec}`"))?,
            )),
            Some((other, _)) => {
                return Err(format!(
                    "bad action `{other}` in `{spec}` (want panic, error, drop or delay=MS)"
                ))
            }
        };
        Ok(FaultRule {
            point: point.to_string(),
            trigger,
            action,
        })
    }

    /// Installs the plan process-wide, returning a guard that uninstalls it
    /// on drop. Blocks until any previously installed plan is dropped, so
    /// concurrent installers (e.g. tests in one binary) serialize instead
    /// of clobbering each other.
    pub fn install(self) -> FaultGuard {
        let lock = install_lock()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let plan = Arc::new(ActivePlan {
            seed: self.seed,
            rules: self
                .rules
                .into_iter()
                .map(|rule| ActiveRule {
                    rule,
                    hits: AtomicU64::new(0),
                    fired: AtomicU64::new(0),
                })
                .collect(),
        });
        *active().lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(&plan));
        ENABLED.store(true, Ordering::Release);
        FaultGuard { _lock: lock, plan }
    }
}

/// Uninstalls the plan (and releases the install lock) on drop.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
    plan: Arc<ActivePlan>,
}

impl FaultGuard {
    /// Snapshot of `(point, hits, fired)` per rule, in rule order.
    pub fn counts(&self) -> Vec<(String, u64, u64)> {
        self.plan
            .rules
            .iter()
            .map(|r| {
                (
                    r.rule.point.clone(),
                    r.hits.load(Ordering::SeqCst),
                    r.fired.load(Ordering::SeqCst),
                )
            })
            .collect()
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Release);
        *active().lock().unwrap_or_else(|p| p.into_inner()) = None;
    }
}

// ordering(hits): SeqCst — the 1-based hit index feeds the deterministic
// trigger decision, so every thread must agree on a single total order of
// increments; counts() snapshots with the same ordering.
// ordering(fired): SeqCst — read against `hits` by chaos assertions
// (fired <= hits must never be observably violated).
struct ActiveRule {
    rule: FaultRule,
    hits: AtomicU64,
    fired: AtomicU64,
}

struct ActivePlan {
    seed: u64,
    rules: Vec<ActiveRule>,
}

// ordering(ENABLED): Release store on install/uninstall pairs with the
// Relaxed fast-path load in `hit` — a stale `false` only skips injection for
// a few more hits (tests drain before asserting), and a `true` sends the
// caller to `hit_slow`, which re-checks under the ACTIVE mutex.
static ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE: Mutex<Option<Arc<ActivePlan>>> = Mutex::new(None);
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn active() -> &'static Mutex<Option<Arc<ActivePlan>>> {
    &ACTIVE
}

fn install_lock() -> &'static Mutex<()> {
    &INSTALL_LOCK
}

/// Records a hit at `point` and returns the action to take, if any.
///
/// The fast path — no plan installed — is one relaxed atomic load. Callers
/// decide how to honor the action; the contract is that an injected fault
/// may fail a query or a connection with a typed error but must never
/// produce a silently wrong result.
#[inline]
pub fn hit(point: &str) -> Option<FaultAction> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    hit_slow(point)
}

#[cold]
fn hit_slow(point: &str) -> Option<FaultAction> {
    let plan = active()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .map(Arc::clone)?;
    let mut decision = None;
    for (index, rule) in plan.rules.iter().enumerate() {
        if rule.rule.point != point {
            continue;
        }
        // 1-based hit index; counted for every matching rule even after an
        // earlier rule fired, so counters stay comparable across rules.
        let hit_index = rule.hits.fetch_add(1, Ordering::SeqCst) + 1;
        let fires = match rule.rule.trigger {
            FaultTrigger::Nth(n) => hit_index == n,
            FaultTrigger::EveryK(k) => hit_index % k == 0,
            FaultTrigger::Probability(p) => decide(plan.seed, index as u64, hit_index) < p,
        };
        if fires {
            rule.fired.fetch_add(1, Ordering::SeqCst);
            if decision.is_none() {
                decision = Some(rule.rule.action);
            }
        }
    }
    decision
}

/// Stateless per-hit decision in `[0, 1)`: SplitMix64 over the seed, rule
/// index and hit index. Same inputs, same output — the whole determinism
/// guarantee lives here.
fn decide(seed: u64, rule_index: u64, hit_index: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(rule_index.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(hit_index);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_returns_none() {
        assert_eq!(hit("engine.worker.process"), None);
    }

    #[test]
    fn parse_rule_grammar() {
        let r = FaultPlan::parse_rule("serve.write:p=0.25:drop").unwrap();
        assert_eq!(r.point, "serve.write");
        assert_eq!(r.trigger, FaultTrigger::Probability(0.25));
        assert_eq!(r.action, FaultAction::Drop);

        let r = FaultPlan::parse_rule("engine.worker.process:nth=3:panic").unwrap();
        assert_eq!(r.trigger, FaultTrigger::Nth(3));
        assert_eq!(r.action, FaultAction::Panic);

        let r = FaultPlan::parse_rule("engine.queue.push:every=10:delay=25").unwrap();
        assert_eq!(r.trigger, FaultTrigger::EveryK(10));
        assert_eq!(r.action, FaultAction::Delay(Duration::from_millis(25)));

        for bad in [
            "nocolons",
            "a:b",
            "serve.read:nth=x:panic",
            "serve.read:every=0:panic",
            "serve.read:p=1.5:panic",
            "serve.read:nth=1:explode",
            "serve.read:nth=1:delay=abc",
            ":nth=1:panic",
        ] {
            assert!(
                FaultPlan::parse_rule(bad).is_err(),
                "{bad} should not parse"
            );
        }
    }

    #[test]
    fn parse_rule_rejects_unregistered_points() {
        let err = FaultPlan::parse_rule("engine.worker.proces:nth=1:panic").unwrap_err();
        assert!(err.contains("unknown fault point"), "{err}");
        assert!(
            err.contains("engine.worker.process"),
            "the error lists the known points: {err}"
        );
    }

    #[test]
    fn registry_and_points_module_agree() {
        for p in REGISTRY {
            assert!(is_registered(p.name));
            assert!(!p.doc.is_empty(), "{} has no doc", p.name);
        }
        let listed = |s: &str| REGISTRY.iter().filter(|p| p.name == s).count();
        for name in [
            points::WORKER_PROCESS,
            points::QUEUE_PUSH,
            points::RUNTIME_SUBMIT,
            points::SERVE_ACCEPT,
            points::SERVE_READ,
            points::SERVE_WRITE,
            points::CACHE_LOOKUP,
            points::CACHE_BUILD,
        ] {
            assert_eq!(listed(name), 1, "{name} must appear exactly once");
        }
        assert_eq!(REGISTRY.len(), 8);
    }

    #[test]
    fn seeded_probability_decisions_are_reproducible() {
        let a: Vec<bool> = (1..=1000).map(|i| decide(7, 0, i) < 0.3).collect();
        let b: Vec<bool> = (1..=1000).map(|i| decide(7, 0, i) < 0.3).collect();
        assert_eq!(a, b, "same seed, same decisions");
        let c: Vec<bool> = (1..=1000).map(|i| decide(8, 0, i) < 0.3).collect();
        assert_ne!(a, c, "a different seed changes the sequence");
        let fired = a.iter().filter(|&&f| f).count();
        // Loose two-sided bound: ~300 expected out of 1000.
        assert!((200..400).contains(&fired), "p=0.3 fired {fired}/1000");
    }

    #[test]
    fn decide_stays_in_unit_interval() {
        for i in 0..1000 {
            let x = decide(42, i % 5, i);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
