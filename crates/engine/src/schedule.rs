//! The scheduler: fixing `ThreadNb`, `QueueNb`, `CacheSize` and `Strategy`
//! for every operation (Section 3, Figure 5).
//!
//! The four steps:
//!
//! 1. **Choosing the number of threads** from the query's estimated
//!    complexity (or an explicit request from the caller, as in the paper's
//!    experiments which fix the thread count).
//! 2. **Assigning the threads to subqueries** bottom-up over the subquery
//!    tree, proportionally to sequential complexity
//!    ([`dbs3_model::allocate_subqueries`]).
//! 3. **Assigning the threads of each chain to its operations** by
//!    complexity ratio ([`dbs3_model::allocate_chain`]).
//! 4. **Choosing the consumption strategy** per operation: LPT for triggered
//!    operations over skewed fragments, Random otherwise.

use crate::error::EngineError;
use crate::strategy::ConsumptionStrategy;
use crate::Result;
use dbs3_lera::{
    ActivationKind, ExtendedPlan, NodeId, Plan, PlanComplexity, SubqueryDecomposition,
};
use dbs3_model::{allocate_chain, allocate_subqueries, SubqueryNode};
use std::collections::BTreeMap;

/// Execution parameters of one operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperationSchedule {
    /// Number of threads in the operation's pool.
    pub threads: usize,
    /// Consumption strategy of the pool.
    pub strategy: ConsumptionStrategy,
    /// Capacity of each activation queue.
    pub queue_capacity: usize,
    /// Producer-side internal cache size (activations per destination before
    /// a flush).
    pub cache_size: usize,
}

/// Default morsel size: fragment rows per control activation when a
/// triggered fragment is split for intra-operator parallelism. Sized so a
/// morsel's working set stays cache-resident while still amortising the
/// queue round-trip over thousands of rows; paper-scale fragments (~1k
/// rows) stay below it and keep their single whole-fragment trigger.
pub const DEFAULT_MORSEL_ROWS: usize = 4_096;

/// Execution parameters for a whole plan.
#[derive(Debug, Clone)]
pub struct ExecutionSchedule {
    per_node: BTreeMap<NodeId, OperationSchedule>,
    /// Store operators count result tuples instead of materialising them.
    discard_results: bool,
    /// Shards a temporary hash-index build is partitioned over
    /// (`HashIndex::build_parallel`); sized from the schedule's total thread
    /// count unless the caller overrode it.
    build_parallelism: usize,
    /// Fragment rows per morsel for triggered operations
    /// ([`DEFAULT_MORSEL_ROWS`] unless overridden). Fragments at or below
    /// this size keep a single whole-fragment trigger.
    morsel_rows: usize,
}

impl ExecutionSchedule {
    /// Builds a schedule from explicit per-node parameters (results are
    /// materialised and index builds are sequential; see
    /// [`Self::with_discard_results`] / [`Self::with_build_parallelism`]).
    pub fn from_parts(per_node: BTreeMap<NodeId, OperationSchedule>) -> Self {
        ExecutionSchedule {
            per_node,
            discard_results: false,
            build_parallelism: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }

    /// Sets the morsel size (fragment rows per control activation) for
    /// triggered operations (clamped to at least 1).
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(1);
        self
    }

    /// Fragment rows per morsel for triggered operations.
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Sets how many shards temporary hash-index builds are partitioned
    /// over (clamped to at least 1).
    pub fn with_build_parallelism(mut self, shards: usize) -> Self {
        self.build_parallelism = shards.max(1);
        self
    }

    /// Shards used for temporary hash-index builds.
    pub fn build_parallelism(&self) -> usize {
        self.build_parallelism
    }

    /// Makes store operators count result tuples instead of materialising
    /// them (cardinalities and metrics stay exact, `results` stays empty).
    pub fn with_discard_results(mut self, discard: bool) -> Self {
        self.discard_results = discard;
        self
    }

    /// Whether store operators only count result tuples.
    pub fn discard_results(&self) -> bool {
        self.discard_results
    }

    /// The schedule of one operation.
    pub fn operation(&self, node: NodeId) -> Result<OperationSchedule> {
        self.per_node
            .get(&node)
            .copied()
            .ok_or(EngineError::IncompleteSchedule { node: node.0 })
    }

    /// Overrides the strategy of every operation (used by the experiments to
    /// force Random or LPT).
    pub fn with_strategy(mut self, strategy: ConsumptionStrategy) -> Self {
        for s in self.per_node.values_mut() {
            s.strategy = strategy;
        }
        self
    }

    /// Overrides the thread count of a single operation.
    pub fn with_operation_threads(mut self, node: NodeId, threads: usize) -> Self {
        if let Some(s) = self.per_node.get_mut(&node) {
            s.threads = threads.max(1);
        }
        self
    }

    /// Total threads across all pools.
    pub fn total_threads(&self) -> usize {
        self.per_node.values().map(|s| s.threads).sum()
    }

    /// All per-node schedules.
    pub fn per_node(&self) -> &BTreeMap<NodeId, OperationSchedule> {
        &self.per_node
    }

    /// Checks the schedule is sane (non-zero threads, capacities and cache
    /// sizes everywhere, and covers every plan node).
    pub fn validate(&self, plan: &Plan) -> Result<()> {
        for node in plan.nodes() {
            let s = self.operation(node.id)?;
            if s.threads == 0 {
                return Err(EngineError::InvalidSchedule(format!(
                    "operation {} has zero threads",
                    node.id
                )));
            }
            if s.queue_capacity == 0 || s.cache_size == 0 {
                return Err(EngineError::InvalidSchedule(format!(
                    "operation {} has a zero queue capacity or cache size",
                    node.id
                )));
            }
        }
        Ok(())
    }
}

/// Tunables of the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerOptions {
    /// Explicit total thread count (the experiments fix this). `None` lets
    /// step 1 derive it from the estimated complexity.
    pub total_threads: Option<usize>,
    /// Upper bound on the derived thread count (e.g. the number of
    /// processors the system may use).
    pub max_threads: usize,
    /// Estimated work (cost units) one thread should be given before it is
    /// worth adding another thread — controls start-up-time amortisation for
    /// low-complexity queries (step 1).
    pub work_per_thread: f64,
    /// Capacity of every activation queue.
    pub queue_capacity: usize,
    /// Producer-side internal cache size.
    pub cache_size: usize,
    /// Force a strategy for every operation instead of letting step 4 pick.
    pub strategy_override: Option<ConsumptionStrategy>,
    /// Skew factor (max instance cost / average instance cost) above which a
    /// triggered operation switches from Random to LPT.
    pub lpt_skew_threshold: f64,
    /// Count result tuples in the store operators instead of materialising
    /// them (for workloads that only need cardinalities and metrics).
    pub discard_results: bool,
    /// Shards a temporary hash-index build is partitioned over. `None`
    /// (default) derives it from the schedule: the resolved total thread
    /// count divided by the number of join instances that build
    /// concurrently (so a saturated pool gets sequential per-instance
    /// builds, while scarce instances absorb the idle threads).
    /// `Some(n)` pins every build to `n` shards; `Some(1)` forces
    /// sequential builds. Zero is rejected by [`Self::validate`] — no
    /// silent clamping.
    pub build_threads: Option<usize>,
    /// Fragment rows per morsel for triggered operations. `None` (default)
    /// uses [`DEFAULT_MORSEL_ROWS`]; `Some(n)` pins the morsel size (a
    /// fragment of `r` rows is split into `ceil(r / n)` control
    /// activations, only the first carrying logical weight — morsel size is
    /// invisible to logical activation counts). Zero is rejected by
    /// [`Self::validate`].
    pub morsel_rows: Option<usize>,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        SchedulerOptions {
            total_threads: None,
            max_threads: 64,
            work_per_thread: 250_000.0,
            queue_capacity: 1024,
            cache_size: 32,
            strategy_override: None,
            lpt_skew_threshold: 3.0,
            discard_results: false,
            build_threads: None,
            morsel_rows: None,
        }
    }
}

impl SchedulerOptions {
    /// Fixes the total thread count, as the paper's experiments do.
    ///
    /// A zero thread count is kept as-is and rejected by [`Self::validate`]
    /// when the schedule is built — no silent clamping.
    pub fn with_total_threads(mut self, threads: usize) -> Self {
        self.total_threads = Some(threads);
        self
    }

    /// Forces one consumption strategy everywhere.
    pub fn with_strategy(mut self, strategy: ConsumptionStrategy) -> Self {
        self.strategy_override = Some(strategy);
        self
    }

    /// Checks the options are executable before any scheduling work starts.
    ///
    /// Rejected configurations (each would otherwise dead-lock or crash the
    /// engine at run time): an explicit total thread count of zero, a zero
    /// activation-queue capacity, a zero internal cache size, and a zero
    /// `max_threads` ceiling for the derived thread count.
    pub fn validate(&self) -> Result<()> {
        if self.total_threads == Some(0) {
            return Err(EngineError::InvalidOptions(
                "total_threads must be at least 1".to_string(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(EngineError::InvalidOptions(
                "queue_capacity must be at least 1".to_string(),
            ));
        }
        if self.cache_size == 0 {
            return Err(EngineError::InvalidOptions(
                "cache_size must be at least 1".to_string(),
            ));
        }
        if self.max_threads == 0 {
            return Err(EngineError::InvalidOptions(
                "max_threads must be at least 1".to_string(),
            ));
        }
        if self.build_threads == Some(0) {
            return Err(EngineError::InvalidOptions(
                "build_threads must be at least 1".to_string(),
            ));
        }
        if self.morsel_rows == Some(0) {
            return Err(EngineError::InvalidOptions(
                "morsel_rows must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// The DBS3 scheduler.
#[derive(Debug, Default)]
pub struct Scheduler;

impl Scheduler {
    /// Builds an execution schedule for a plan (steps 1–4 of Figure 5).
    pub fn build(
        plan: &Plan,
        extended: &ExtendedPlan,
        options: &SchedulerOptions,
    ) -> Result<ExecutionSchedule> {
        options.validate()?;
        let complexity = PlanComplexity::from_extended(extended);
        let decomposition = SubqueryDecomposition::decompose(plan)?;

        // Step 1: total thread count.
        let total_threads = match options.total_threads {
            Some(n) => n,
            None => {
                let derived = (complexity.total() / options.work_per_thread).ceil() as usize;
                derived.clamp(1, options.max_threads)
            }
        };

        // Step 2: threads per subquery. Independent chains become children of
        // a synthetic root whose own complexity is zero, which reproduces the
        // paper's proportional split between sibling subqueries.
        let chain_threads: Vec<usize> = if decomposition.len() == 1 {
            vec![total_threads]
        } else {
            let children: Vec<SubqueryNode> = decomposition
                .subqueries()
                .iter()
                .map(|sq| SubqueryNode::leaf(sq.id, sq.complexity(&complexity)))
                .collect();
            let root_id = decomposition.len(); // unused id for the synthetic root
            let tree = SubqueryNode::node(root_id, 0.0, children);
            let alloc = allocate_subqueries(&tree, total_threads);
            decomposition
                .subqueries()
                .iter()
                .map(|sq| alloc.integral_threads_of(sq.id).unwrap_or(1))
                .collect()
        };

        // Step 3: threads per operation within each chain.
        let mut per_node: BTreeMap<NodeId, OperationSchedule> = BTreeMap::new();
        for (sq, &threads) in decomposition.subqueries().iter().zip(&chain_threads) {
            let op_complexities: Vec<f64> = sq.nodes.iter().map(|n| complexity.node(*n)).collect();
            let shares = allocate_chain(threads, &op_complexities);
            for (node, share) in sq.nodes.iter().zip(shares) {
                // Step 4: consumption strategy.
                let strategy = Self::pick_strategy(extended, *node, options);
                per_node.insert(
                    *node,
                    OperationSchedule {
                        threads: share,
                        strategy,
                        queue_capacity: options.queue_capacity,
                        cache_size: options.cache_size,
                    },
                );
            }
        }

        // Index-build parallelism: the caller's pin wins verbatim; the
        // derived default divides the thread budget across the operation
        // instances that build *concurrently*. One temporary index is built
        // per join instance, and with instances >= threads the pool is
        // already saturated by whole builds — sharding each build further
        // would spawn threads× extra workers and re-scan the hash array
        // shards× for no wall-clock gain. Only when instances are scarcer
        // than threads (low degree, single-fragment inners) do the idle
        // threads go into each build.
        let build_parallelism = match options.build_threads {
            Some(n) => n.max(1),
            None => {
                let max_building_instances = plan
                    .nodes()
                    .iter()
                    .filter(|n| {
                        matches!(
                            &n.kind,
                            dbs3_lera::OperatorKind::Join { algorithm, .. }
                                if !matches!(algorithm, dbs3_lera::JoinAlgorithm::NestedLoop)
                        )
                    })
                    .filter_map(|n| extended.operation(n.id).map(|op| op.instance_count()))
                    .max()
                    .unwrap_or(1);
                (total_threads / max_building_instances.max(1)).max(1)
            }
        };
        let schedule = ExecutionSchedule {
            per_node,
            discard_results: options.discard_results,
            build_parallelism,
            morsel_rows: options.morsel_rows.unwrap_or(DEFAULT_MORSEL_ROWS).max(1),
        };
        schedule.validate(plan)?;
        Ok(schedule)
    }

    /// Step 4: LPT for skewed triggered operations, Random otherwise.
    fn pick_strategy(
        extended: &ExtendedPlan,
        node: NodeId,
        options: &SchedulerOptions,
    ) -> ConsumptionStrategy {
        if let Some(forced) = options.strategy_override {
            return forced;
        }
        let Some(op) = extended.operation(node) else {
            return ConsumptionStrategy::Random;
        };
        if op.activation_kind != ActivationKind::Control {
            // Pipelined operations are naturally insensitive to skew
            // (Section 4.1): Random is fine and cheaper.
            return ConsumptionStrategy::Random;
        }
        let costs: Vec<f64> = op.instances().iter().map(|i| i.estimated_cost).collect();
        if costs.is_empty() {
            return ConsumptionStrategy::Random;
        }
        let max = costs.iter().cloned().fold(f64::MIN, f64::max);
        let avg = costs.iter().sum::<f64>() / costs.len() as f64;
        if avg > 0.0 && max / avg > options.lpt_skew_threshold {
            ConsumptionStrategy::Lpt
        } else {
            ConsumptionStrategy::Random
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbs3_lera::{plans, CostParameters, JoinAlgorithm};
    use dbs3_storage::{
        Catalog, PartitionSpec, PartitionedRelation, WisconsinConfig, WisconsinGenerator,
    };

    fn catalog(skew: f64) -> Catalog {
        let gen = WisconsinGenerator::new();
        let a = gen.generate(&WisconsinConfig::narrow("A", 5000)).unwrap();
        let b = gen
            .generate(&WisconsinConfig::narrow("Bprime", 500))
            .unwrap();
        let mut cat = Catalog::new();
        let spec = PartitionSpec::on("unique1", 40, 4);
        let a_part = if skew > 0.0 {
            PartitionedRelation::from_relation_with_skew(&a, spec.clone(), skew).unwrap()
        } else {
            PartitionedRelation::from_relation(&a, spec.clone()).unwrap()
        };
        cat.register(a_part).unwrap();
        cat.register(PartitionedRelation::from_relation(&b, spec).unwrap())
            .unwrap();
        cat
    }

    fn extended(cat: &Catalog, plan: &Plan) -> ExtendedPlan {
        ExtendedPlan::from_plan(plan, cat, &CostParameters::default()).unwrap()
    }

    #[test]
    fn explicit_thread_count_is_distributed_across_the_chain() {
        let cat = catalog(0.0);
        let plan = plans::assoc_join("Bprime", "A", "unique1", JoinAlgorithm::NestedLoop);
        let ext = extended(&cat, &plan);
        let schedule = Scheduler::build(
            &plan,
            &ext,
            &SchedulerOptions::default().with_total_threads(10),
        )
        .unwrap();
        assert_eq!(schedule.total_threads(), 10);
        // The join dominates the complexity, so it receives most threads.
        let join_threads = schedule.operation(NodeId(1)).unwrap().threads;
        let transmit_threads = schedule.operation(NodeId(0)).unwrap().threads;
        assert!(join_threads > transmit_threads);
        assert!(transmit_threads >= 1);
    }

    #[test]
    fn derived_thread_count_scales_with_complexity() {
        let cat = catalog(0.0);
        let small = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let big = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::NestedLoop);
        let options = SchedulerOptions {
            total_threads: None,
            work_per_thread: 10_000.0,
            max_threads: 32,
            ..SchedulerOptions::default()
        };
        let s_small = Scheduler::build(&small, &extended(&cat, &small), &options).unwrap();
        let s_big = Scheduler::build(&big, &extended(&cat, &big), &options).unwrap();
        assert!(s_big.total_threads() >= s_small.total_threads());
        assert!(s_big.total_threads() <= 32 + 1); // clamp (+1 for the minimum-per-op rule)
    }

    #[test]
    fn skewed_triggered_join_gets_lpt() {
        let cat = catalog(1.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::NestedLoop);
        let ext = extended(&cat, &plan);
        let schedule = Scheduler::build(
            &plan,
            &ext,
            &SchedulerOptions::default().with_total_threads(10),
        )
        .unwrap();
        assert_eq!(
            schedule.operation(NodeId(0)).unwrap().strategy,
            ConsumptionStrategy::Lpt
        );
    }

    #[test]
    fn unskewed_join_keeps_random() {
        let cat = catalog(0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::NestedLoop);
        let ext = extended(&cat, &plan);
        let schedule = Scheduler::build(
            &plan,
            &ext,
            &SchedulerOptions::default().with_total_threads(10),
        )
        .unwrap();
        assert_eq!(
            schedule.operation(NodeId(0)).unwrap().strategy,
            ConsumptionStrategy::Random
        );
    }

    #[test]
    fn strategy_override_wins() {
        let cat = catalog(1.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::NestedLoop);
        let ext = extended(&cat, &plan);
        let schedule = Scheduler::build(
            &plan,
            &ext,
            &SchedulerOptions::default()
                .with_total_threads(10)
                .with_strategy(ConsumptionStrategy::Random),
        )
        .unwrap();
        assert_eq!(
            schedule.operation(NodeId(0)).unwrap().strategy,
            ConsumptionStrategy::Random
        );
    }

    #[test]
    fn missing_operation_is_an_error() {
        let schedule = ExecutionSchedule::from_parts(BTreeMap::new());
        assert!(matches!(
            schedule.operation(NodeId(0)),
            Err(EngineError::IncompleteSchedule { node: 0 })
        ));
    }

    #[test]
    fn validate_rejects_zero_threads() {
        let cat = catalog(0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let mut per_node = BTreeMap::new();
        for node in plan.nodes() {
            per_node.insert(
                node.id,
                OperationSchedule {
                    threads: 0,
                    strategy: ConsumptionStrategy::Random,
                    queue_capacity: 16,
                    cache_size: 4,
                },
            );
        }
        let schedule = ExecutionSchedule::from_parts(per_node);
        assert!(matches!(
            schedule.validate(&plan),
            Err(EngineError::InvalidSchedule(_))
        ));
        let _ = cat;
    }

    #[test]
    fn build_rejects_zero_total_threads() {
        let cat = catalog(0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let ext = extended(&cat, &plan);
        let err = Scheduler::build(
            &plan,
            &ext,
            &SchedulerOptions::default().with_total_threads(0),
        )
        .unwrap_err();
        assert!(
            matches!(&err, EngineError::InvalidOptions(msg) if msg.contains("total_threads")),
            "got {err:?}"
        );
    }

    #[test]
    fn build_rejects_zero_cache_size() {
        let cat = catalog(0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let ext = extended(&cat, &plan);
        let options = SchedulerOptions {
            cache_size: 0,
            ..SchedulerOptions::default().with_total_threads(4)
        };
        let err = Scheduler::build(&plan, &ext, &options).unwrap_err();
        assert!(
            matches!(&err, EngineError::InvalidOptions(msg) if msg.contains("cache_size")),
            "got {err:?}"
        );
    }

    #[test]
    fn validate_rejects_zero_queue_capacity_and_max_threads() {
        let zero_capacity = SchedulerOptions {
            queue_capacity: 0,
            ..SchedulerOptions::default()
        };
        assert!(matches!(
            zero_capacity.validate(),
            Err(EngineError::InvalidOptions(_))
        ));
        let zero_max = SchedulerOptions {
            max_threads: 0,
            ..SchedulerOptions::default()
        };
        assert!(matches!(
            zero_max.validate(),
            Err(EngineError::InvalidOptions(_))
        ));
        assert!(SchedulerOptions::default().validate().is_ok());
    }

    #[test]
    fn build_parallelism_follows_thread_count_unless_pinned() {
        let cat = catalog(0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let ext = extended(&cat, &plan);
        // 40 join instances build concurrently across 6 threads: each build
        // is sequential (sharding it would only oversubscribe the pool).
        let derived = Scheduler::build(
            &plan,
            &ext,
            &SchedulerOptions::default().with_total_threads(6),
        )
        .unwrap();
        assert_eq!(derived.build_parallelism(), 1);
        // With fewer instances than threads, the idle budget goes into each
        // build: 2 instances × 6 threads => 3 shards per build.
        let narrow_cat = {
            let gen = WisconsinGenerator::new();
            let a = gen.generate(&WisconsinConfig::narrow("A", 5000)).unwrap();
            let b = gen
                .generate(&WisconsinConfig::narrow("Bprime", 500))
                .unwrap();
            let spec = PartitionSpec::on("unique1", 2, 2);
            let mut cat = Catalog::new();
            cat.register(PartitionedRelation::from_relation(&a, spec.clone()).unwrap())
                .unwrap();
            cat.register(PartitionedRelation::from_relation(&b, spec).unwrap())
                .unwrap();
            cat
        };
        let narrow_ext = extended(&narrow_cat, &plan);
        let narrow = Scheduler::build(
            &plan,
            &narrow_ext,
            &SchedulerOptions::default().with_total_threads(6),
        )
        .unwrap();
        assert_eq!(narrow.build_parallelism(), 3);
        let pinned = Scheduler::build(
            &plan,
            &ext,
            &SchedulerOptions {
                build_threads: Some(2),
                ..SchedulerOptions::default().with_total_threads(6)
            },
        )
        .unwrap();
        assert_eq!(pinned.build_parallelism(), 2);
        // Explicit zero is a typed error, not a silent clamp.
        let err = Scheduler::build(
            &plan,
            &ext,
            &SchedulerOptions {
                build_threads: Some(0),
                ..SchedulerOptions::default().with_total_threads(6)
            },
        )
        .unwrap_err();
        assert!(
            matches!(&err, EngineError::InvalidOptions(msg) if msg.contains("build_threads")),
            "got {err:?}"
        );
        // Hand-built schedules default to sequential builds and can opt in.
        let manual = ExecutionSchedule::from_parts(BTreeMap::new());
        assert_eq!(manual.build_parallelism(), 1);
        assert_eq!(manual.with_build_parallelism(8).build_parallelism(), 8);
    }

    #[test]
    fn morsel_rows_default_pin_and_zero_rejection() {
        let cat = catalog(0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let ext = extended(&cat, &plan);
        let derived = Scheduler::build(
            &plan,
            &ext,
            &SchedulerOptions::default().with_total_threads(4),
        )
        .unwrap();
        assert_eq!(derived.morsel_rows(), DEFAULT_MORSEL_ROWS);
        let pinned = Scheduler::build(
            &plan,
            &ext,
            &SchedulerOptions {
                morsel_rows: Some(512),
                ..SchedulerOptions::default().with_total_threads(4)
            },
        )
        .unwrap();
        assert_eq!(pinned.morsel_rows(), 512);
        let err = Scheduler::build(
            &plan,
            &ext,
            &SchedulerOptions {
                morsel_rows: Some(0),
                ..SchedulerOptions::default().with_total_threads(4)
            },
        )
        .unwrap_err();
        assert!(
            matches!(&err, EngineError::InvalidOptions(msg) if msg.contains("morsel_rows")),
            "got {err:?}"
        );
        let manual = ExecutionSchedule::from_parts(BTreeMap::new());
        assert_eq!(manual.morsel_rows(), DEFAULT_MORSEL_ROWS);
        assert_eq!(manual.with_morsel_rows(64).morsel_rows(), 64);
    }

    #[test]
    fn with_helpers_adjust_schedule() {
        let cat = catalog(0.0);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let ext = extended(&cat, &plan);
        let schedule = Scheduler::build(
            &plan,
            &ext,
            &SchedulerOptions::default().with_total_threads(4),
        )
        .unwrap()
        .with_strategy(ConsumptionStrategy::Lpt)
        .with_operation_threads(NodeId(0), 7);
        assert_eq!(schedule.operation(NodeId(0)).unwrap().threads, 7);
        assert_eq!(
            schedule.operation(NodeId(1)).unwrap().strategy,
            ConsumptionStrategy::Lpt
        );
    }
}
