//! The persistent multi-query runtime: one shared worker pool, many
//! concurrent queries.
//!
//! The paper's DBS3 engine keeps a fixed pool of threads alive and makes
//! *activations* — not threads — the unit of scheduled work. This module is
//! that model taken to its conclusion at the API boundary: a [`Runtime`]
//! spawns its worker threads **once**, parks them on a condvar while no
//! query is live, and accepts any number of concurrently submitted queries.
//! Each [`Runtime::submit`] call builds a private *queue set* for the query
//! — one [`ActivationQueue`] per operation instance, exactly the structure
//! of Figure 4 — tags it with a [`QueryId`], and registers it with the pool.
//! Workers then pick activations **across all live queries**, still under
//! the paper's consumption machinery (main/secondary queues, `Random`/`LPT`
//! per operation), so the intra-query scheduling of Section 3 extends to
//! inter-query scheduling without new mechanism.
//!
//! # Work finding: the global ready-op deque
//!
//! Workers do not scan the registry for work. A single FIFO deque of
//! *ready operations* (one `(query, op)` entry per operation that has
//! buffered activations) is the only structure a worker consults: pop the
//! front entry, put it straight back at the tail, process one batch. The
//! re-push-before-processing move does three jobs at once:
//!
//! * **O(1) work finding** — idle-probe cost is independent of how many
//!   queries or operations are live (and the idle path allocates nothing);
//! * **cross-query fairness** — entries rotate through the deque, so no
//!   query can starve another however long its own queues are (the
//!   pathology the old sticky-cursor registry scan produced at 4
//!   concurrent queries);
//! * **intra-operator parallelism** — the entry is back in the deque while
//!   the batch is processed, so sibling workers converge on the same
//!   operation when it is the only one with work (this is what makes
//!   fragment morsels actually run in parallel).
//!
//! The invariant is *at most one deque entry per operation*, maintained by
//! the per-op `announced` flag: producers announce an operation on every
//! successful push (the CAS makes duplicates impossible), and a worker that
//! pops an entry whose operation has no buffered work left clears the flag,
//! then re-checks and re-announces if a push raced the clear — the classic
//! lost-wakeup two-step. Within an operation, *which queue* to pop stays
//! exactly the paper's machinery (main/secondary split, `Random`/`LPT`).
//!
//! # Morsels
//!
//! Triggered operations receive their control activations at submit time.
//! A fragment larger than the schedule's `morsel_rows` is split into
//! [`Activation::Morsel`]s — contiguous row ranges, claimed one per pop —
//! instead of a single whole-fragment [`Activation::Trigger`], so several
//! workers can scan one fragment concurrently (the engine-side counterpart
//! of the simulator's `triggered_granule`). Only the lead morsel carries
//! logical weight: per-operation logical activation counts are identical
//! whatever the morsel size, which `tests/backend_equivalence.rs` pins
//! across backends.
//!
//! # Differences from the per-query scoped-thread executor
//!
//! * **Thread ownership is inverted.** Threads belong to the runtime, not
//!   to an operation of one query. An operation's scheduled thread count
//!   still shapes the *plan* (queue cost estimates, strategy choice); the
//!   pool width bounds actual parallelism.
//! * **Termination is by accounting, not by thread exit.** The old executor
//!   closed a consumer's queues when the last producer *thread* exited.
//!   Here an operation is *finished* when all its queues are exhausted
//!   (closed + drained) and no worker holds one of its activations
//!   (`inflight == 0`); finishing closes the consumer's queues, and the
//!   check cascades down the pipeline. When every operation of a query has
//!   finished, its results and metrics are sealed into a completion cell
//!   and the query's [`QueryHandle::wait`] returns.
//! * **Backpressure is cooperative.** A dedicated-pool engine can block on
//!   a full consumer queue because the consumer owns other threads. A
//!   shared pool cannot — if every worker blocked producing, nobody would
//!   be left to consume and the pool would deadlock. Workers therefore
//!   never block on a push: when a destination queue is full they *help
//!   drain it* (pop a batch from that very queue and process it, exactly as
//!   the consumer would), then retry. Helping recurses at most to the
//!   pipeline depth and each step makes real progress, so tiny queue
//!   capacities stay deadlock-free.
//! * **Idle costs nothing.** Workers that find no poppable activation
//!   anywhere park on a condvar (epoch-checked so a wakeup between the scan
//!   and the park is never lost). An idle runtime burns no CPU; `submit`
//!   and every queue flush wake the sleepers.
//!
//! Cancellation ([`QueryHandle::cancel`]) closes and drains the query's
//! queues and completes the cell with
//! [`EngineError::QueryCancelled`]; in-flight workers notice the closed
//! queues (their flushes are dropped) and move on, leaving the pool
//! reusable. Dropping the [`Runtime`] signals shutdown, joins the workers,
//! and fails any still-pending query with [`EngineError::RuntimeShutdown`]
//! so no waiter ever hangs.

use crate::activation::{Activation, TupleBatch};
use crate::cache::{self, CacheStats, PreparedPlan};
use crate::error::EngineError;
use crate::executor::ExecutionOutcome;
use crate::faults::{self, FaultAction};
use crate::metrics::{ExecutionMetrics, OperationMetrics, ThreadMetrics};
use crate::operators::{
    BoundOperator, FilterOperator, PipelinedJoinOperator, StoreOperator, TransmitOperator,
    TriggeredJoinOperator,
};
use crate::queue::{ActivationQueue, TryPushError};
use crate::schedule::ExecutionSchedule;
use crate::strategy::ConsumptionStrategy;
use crate::sync::CachePadded;
use crate::Result;
use dbs3_lera::{CostParameters, ExtendedPlan, NodeId, OperatorKind, OuterInput, Plan};
use dbs3_storage::{Catalog, Tuple};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifier of a query submitted to a [`Runtime`], unique within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// How data activations produced by one operation find the consumer
/// instance's queue (identical to the static executor's routing).
#[derive(Debug, Clone)]
enum Router {
    /// Hash the given column over the consumer's degree — the dynamic
    /// redistribution of `Transmit`/pipelined joins, matching the static
    /// partitioning function exactly.
    HashColumn { column: usize, degree: usize },
    /// Keep the producing instance (result fragments are co-located with
    /// the producing join instances).
    SameInstance,
}

/// A link from a producer operation to its consumer within one query.
#[derive(Debug, Clone)]
struct ConsumerLink {
    consumer_index: usize,
    router: Router,
}

/// Runtime state of one operation of a submitted query.
struct OpRuntime {
    node: NodeId,
    name: String,
    operator: Arc<BoundOperator>,
    queues: Vec<Arc<ActivationQueue>>,
    strategy: ConsumptionStrategy,
    /// Batch budget of one pop and flush threshold of the producer-side
    /// scatter buffers (the paper's `CacheSize`).
    cache_size: usize,
    consumer: Option<ConsumerLink>,
    /// Queue indexes in decreasing estimated-cost order (the LPT visit
    /// order; computed once at submit because the estimates are static).
    lpt_order: Vec<usize>,
    /// Workers currently holding popped activations of this operation (or
    /// probing its queues). The operation cannot finish while non-zero.
    /// Cache-padded: bumped by every worker touching the operation, and a
    /// line shared with `pending` (or a neighbouring op's counters) would
    /// ping-pong between cores on every poll.
    // ordering(inflight): SeqCst — the termination check reads inflight
    // against queue exhaustion; a weaker pair could observe "no inflight"
    // before a racing worker's increment and finish an op that still has a
    // popped batch in hand.
    inflight: CachePadded<AtomicUsize>,
    /// Set exactly once, when the operation's queues are exhausted and no
    /// activation is in flight.
    // ordering(finished): SeqCst — the once-only CAS and its readers form
    // the op-termination protocol with `inflight` and the queue mirrors;
    // one total order keeps "finished" from outrunning the exhaustion it
    // summarizes.
    finished: AtomicBool,
    /// Whether the operation currently holds its (single) entry in the
    /// runtime's ready deque. Producers CAS this `false → true` on every
    /// successful push, so an operation is announced at most once however
    /// many flushes race; a worker that finds the operation drained clears
    /// it and re-checks `pending` (see [`retire_ready_entry`]).
    // ordering(announced): SeqCst — the announce CAS must be ordered
    // against the `pending` bump it gates: retire clears announced, then
    // re-reads pending; a producer bumps pending, then CASes announced.
    // SeqCst on both sides closes the lost-announcement window.
    announced: AtomicBool,
    /// Advisory count of *queue weight* (control activations count one,
    /// data activations count their tuples) buffered across the operation's
    /// queues, maintained by the runtime's own pushes and pops. Gates the
    /// ready-deque announcements and lets workers skip drained operations
    /// with one atomic load instead of probing every queue. Termination
    /// never reads this (it re-checks the queues themselves), so staleness
    /// costs a wasted probe at most.
    /// Cache-padded so producer-side `fetch_add`s don't invalidate the line
    /// the consumers' read-mostly fields live on (false sharing): workers
    /// read `pending` on every poll of the op, while flushes write it.
    // ordering(pending): SeqCst — one half of the announce/retire protocol
    // (see `announced`); advisory for work-skipping but load-bearing for
    // the at-most-one-deque-entry invariant.
    pending: CachePadded<AtomicU64>,
}

/// Per-operation, per-worker thread metrics slots of one query.
type MetricsSlots = Vec<Vec<Mutex<ThreadMetrics>>>;

/// The completion cell a [`QueryHandle`] waits on.
struct CompletionCell {
    outcome: Mutex<Option<Result<ExecutionOutcome>>>,
    done: Condvar,
}

/// Everything the pool needs to execute one submitted query.
struct QueryState {
    id: QueryId,
    /// Operations in topological (producer-before-consumer) order.
    ops: Vec<OpRuntime>,
    /// Store operators keyed by result name, for result collection.
    stores: Vec<(String, Arc<BoundOperator>)>,
    started: Instant,
    // ordering(cancelled): SeqCst store on cancel so the flag is visible
    // before the queues close; the hot-path probes in `is_live` and the
    // worker loop load Relaxed — acting on a stale `false` only means one
    // more harmless batch, and the completion cell is mutex-sealed anyway.
    cancelled: AtomicBool,
    /// Operations not yet finished; the query completes when this hits 0.
    // ordering(ops_remaining): SeqCst on the finish-side decrement (it
    // decides query completion, ordered against op `finished` flags);
    // `is_live` probes with Relaxed because staleness only costs a wasted
    // scan.
    ops_remaining: AtomicUsize,
    /// Monotone activation-progress counter: bumped every time a worker
    /// processes a batch for this query. The watchdog compares successive
    /// readings to detect wedged queries; nothing else reads it.
    // ordering(progress): Relaxed writes on the worker hot path — the
    // watchdog only compares successive snapshots seconds apart, so any
    // eventually-visible increment works; its reader uses SeqCst merely to
    // pair with the rest of the watchdog scan.
    progress: AtomicU64,
    /// Process-wide cache counters as of submission; finalization reports
    /// the delta as this query's cache activity.
    cache_baseline: CacheStats,
    metrics: MetricsSlots,
    cell: CompletionCell,
}

impl QueryState {
    /// Seals the outcome exactly once (first writer wins — a cancel racing
    /// a natural completion keeps the cancel) and wakes every waiter.
    fn complete(&self, result: Result<ExecutionOutcome>) {
        let mut slot = self.cell.outcome.lock();
        if slot.is_none() {
            *slot = Some(result);
            self.cell.done.notify_all();
        }
    }

    /// Whether any work could remain for this query.
    fn is_live(&self) -> bool {
        !self.cancelled.load(Ordering::Relaxed) && self.ops_remaining.load(Ordering::Relaxed) > 0
    }
}

/// Epoch-checked condvar parking: workers that find no work anywhere sleep
/// here; every producer-side event (submit, queue flush, shutdown) bumps the
/// epoch and wakes the sleepers. The parker re-checks the epoch *after*
/// announcing itself, so a wakeup between its last scan and the wait can
/// never be lost.
struct IdleParking {
    // ordering(epoch): SeqCst — the snapshot/announce/re-check dance only
    // excludes lost wakeups if the epoch bump, the sleeper count and the
    // parker's re-read sit in one total order (this is the textbook
    // flag-and-check where weaker orders allow both sides to miss).
    epoch: AtomicU64,
    // ordering(sleepers): SeqCst — read by `wake_all` to decide whether to
    // take the mutex at all; must not be reorderable against the epoch
    // bump or a parker could announce itself and still sleep unwoken.
    sleepers: AtomicUsize,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl IdleParking {
    fn new() -> Self {
        IdleParking {
            epoch: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// The epoch to snapshot before a work scan.
    fn current(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Signals that new work may exist. Cheap when nobody sleeps: one
    /// atomic increment and one atomic load.
    fn wake_all(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.mutex.lock();
            self.cv.notify_all();
        }
    }

    /// Parks the calling worker unless the epoch moved past `seen` (i.e.
    /// work may have arrived since the scan started). The timeout is a
    /// belt-and-braces liveness net, not a polling loop: a parked worker
    /// re-scans a few times per second at most.
    fn park(&self, seen: u64) {
        let mut guard = self.mutex.lock();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if self.epoch.load(Ordering::SeqCst) == seen {
            self.cv.wait_for(&mut guard, Duration::from_millis(200));
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Pool state shared by the [`Runtime`] handle, its workers and every
/// [`QueryHandle`].
struct RuntimeInner {
    pool_threads: usize,
    /// Bookkeeping registry of live queries (for `live_queries`, shutdown
    /// and abort). Workers never scan it for work — they pop the ready
    /// deque instead.
    queries: Mutex<Vec<Arc<QueryState>>>,
    /// The global ready-op deque: at most one `(query, op)` entry per
    /// operation that has buffered activations (see the module docs).
    /// Workers pop the front; producers announce at the back.
    ready: Mutex<VecDeque<(Arc<QueryState>, usize)>>,
    // ordering(next_query): SeqCst — id allocation; uniqueness is all that
    // matters and the fetch_add is nowhere near a hot path.
    next_query: AtomicU64,
    // ordering(shutdown): SeqCst store + SeqCst loads at the decision
    // points (submit gate, worker exit, drain loop) so no worker can see
    // work queued after it observed the flag; the per-batch probe in the
    // worker loop loads Relaxed since a stale `false` just processes one
    // more batch before exit.
    shutdown: AtomicBool,
    idle: IdleParking,
}

impl RuntimeInner {
    fn remove_query(&self, id: QueryId) {
        self.queries.lock().retain(|q| q.id != id);
    }

    fn pop_ready(&self) -> Option<(Arc<QueryState>, usize)> {
        self.ready.lock().pop_front()
    }

    fn push_ready(&self, query: Arc<QueryState>, op_index: usize) {
        self.ready.lock().push_back((query, op_index));
    }
}

/// Puts `op_index` of `query` into the ready deque unless it is already
/// there (the `announced` CAS enforces the one-entry-per-op invariant) and
/// wakes parked workers. Called by every producer-side push.
fn announce_op(inner: &RuntimeInner, query: &Arc<QueryState>, op_index: usize) {
    let op = &query.ops[op_index];
    if op.finished.load(Ordering::SeqCst) {
        return;
    }
    if op
        .announced
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        inner.push_ready(Arc::clone(query), op_index);
        inner.idle.wake_all();
    }
}

/// Drops an op's claim on its ready-deque entry after a worker popped the
/// entry and found the operation drained (or its query dead). Clearing the
/// flag opens the classic lost-wakeup window — a producer may have pushed
/// between the drain check and the clear, with its CAS failing against the
/// still-set flag — so the op is re-checked and re-announced afterwards.
fn retire_ready_entry(inner: &RuntimeInner, query: &Arc<QueryState>, op_index: usize) {
    let op = &query.ops[op_index];
    op.announced.store(false, Ordering::SeqCst);
    if query.is_live()
        && !op.finished.load(Ordering::SeqCst)
        && op.pending.load(Ordering::SeqCst) > 0
    {
        announce_op(inner, query, op_index);
    }
}

/// A long-lived shared worker pool executing concurrently submitted
/// queries. See the [module docs](self) for the execution model.
///
/// [`Runtime::shutdown`] (or dropping the runtime) signals shutdown, joins
/// the workers and fails any query still in flight with
/// [`EngineError::RuntimeShutdown`].
pub struct Runtime {
    inner: Arc<RuntimeInner>,
    /// Worker join handles, behind a mutex so `shutdown(&self)` can retire
    /// the pool through a shared reference (servers hold `Arc<Runtime>`).
    /// Emptied exactly once — by the first shutdown.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("pool_threads", &self.inner.pool_threads)
            .field("live_queries", &self.live_queries())
            .finish()
    }
}

impl Runtime {
    /// Spawns a runtime with `pool_threads` worker threads. The threads are
    /// created once, park while no query is live, and are joined when the
    /// runtime is dropped.
    pub fn new(pool_threads: usize) -> Result<Self> {
        Runtime::build(pool_threads, None)
    }

    /// Like [`Runtime::new`], plus a watchdog thread that aborts any query
    /// making no activation progress for `stall_after` with a typed
    /// [`EngineError::QueryStuck`].
    ///
    /// The watchdog is a liveness heuristic, not an oracle: on a pool
    /// saturated by *other* queries for longer than `stall_after`, a starved
    /// but healthy query is indistinguishable from a wedged one and will be
    /// aborted too. Pick `stall_after` well above the expected worst-case
    /// scheduling delay (servers typically use seconds).
    pub fn with_watchdog(pool_threads: usize, stall_after: Duration) -> Result<Self> {
        if stall_after.is_zero() {
            return Err(EngineError::InvalidOptions(
                "watchdog stall interval must be positive".to_string(),
            ));
        }
        Runtime::build(pool_threads, Some(stall_after))
    }

    fn build(pool_threads: usize, stall_after: Option<Duration>) -> Result<Self> {
        if pool_threads == 0 {
            return Err(EngineError::InvalidOptions(
                "runtime pool must have at least 1 thread".to_string(),
            ));
        }
        let inner = Arc::new(RuntimeInner {
            pool_threads,
            queries: Mutex::new(Vec::new()),
            ready: Mutex::new(VecDeque::new()),
            next_query: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            idle: IdleParking::new(),
        });
        let mut workers: Vec<JoinHandle<()>> = (0..pool_threads)
            .map(|worker| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dbs3-runtime-{worker}"))
                    .spawn(move || worker_loop(&inner, worker))
                    // allow-panic: thread spawn fails only on resource
                    // exhaustion at startup; no query is in flight yet.
                    .expect("spawning a runtime worker thread")
            })
            .collect();
        if let Some(stall_after) = stall_after {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("dbs3-watchdog".to_string())
                    .spawn(move || watchdog_loop(&inner, stall_after))
                    // allow-panic: same startup-only spawn as the workers.
                    .expect("spawning the runtime watchdog thread"),
            );
        }
        Ok(Runtime {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// Number of worker threads in the pool.
    pub fn pool_threads(&self) -> usize {
        self.inner.pool_threads
    }

    /// Returns the process-wide shared runtime with `pool_threads` workers,
    /// spawning it on first use.
    ///
    /// This is the pool behind [`Executor::execute`](crate::Executor):
    /// repeated blocking runs at the same thread count reuse one long-lived
    /// pool instead of spawning and joining `n` OS threads per query —
    /// at paper-scale workloads the spawn/join round trip costs as much as
    /// the query itself. Shared runtimes live for the rest of the process
    /// (they are never dropped; idle workers park on a condvar at ~0% CPU),
    /// and concurrent callers at the same width share one pool — the
    /// runtime schedules their queries side by side, which is its job.
    pub fn shared(pool_threads: usize) -> Result<Arc<Runtime>> {
        static POOLS: std::sync::OnceLock<Mutex<BTreeMap<usize, Arc<Runtime>>>> =
            std::sync::OnceLock::new();
        let mut pools = POOLS.get_or_init(|| Mutex::new(BTreeMap::new())).lock();
        if let Some(runtime) = pools.get(&pool_threads) {
            return Ok(Arc::clone(runtime));
        }
        let runtime = Arc::new(Runtime::new(pool_threads)?);
        pools.insert(pool_threads, Arc::clone(&runtime));
        Ok(runtime)
    }

    /// Number of queries currently registered (submitted, not yet completed
    /// or cancelled).
    pub fn live_queries(&self) -> usize {
        self.inner.queries.lock().len()
    }

    /// Total buffered logical activations across every live query's
    /// operations — the pool's backlog, read from the per-op advisory
    /// `pending` counters the ready-deque machinery already maintains (one
    /// relaxed-cost atomic load per operation; no queue locks taken).
    ///
    /// This is an admission-control signal, not an exact count: the
    /// counters are advisory (see their field docs) and can run slightly
    /// ahead of or behind the queues. Zero with [`Runtime::live_queries`]
    /// positive means queries exist whose remaining work is all in flight
    /// on workers.
    pub fn queue_pressure(&self) -> u64 {
        let queries = self.inner.queries.lock();
        queries
            .iter()
            .flat_map(|q| q.ops.iter())
            .map(|op| op.pending.load(Ordering::SeqCst))
            .sum()
    }

    /// Submits `plan` for execution under `schedule` and returns
    /// immediately with a [`QueryHandle`]. Equivalent to
    /// [`Runtime::submit_with`] with default [`CostParameters`].
    pub fn submit(
        &self,
        catalog: &Catalog,
        plan: &Plan,
        schedule: &ExecutionSchedule,
    ) -> Result<QueryHandle> {
        self.submit_with(catalog, plan, schedule, &CostParameters::default())
    }

    /// Submits `plan` with explicit cost parameters (they drive the static
    /// cost estimates attached to queues, i.e. the LPT visit order).
    ///
    /// Binding happens on the calling thread: relation names resolve to
    /// `Arc` fragments, triggers are injected, and the query's queue set is
    /// registered with the pool. Workers start consuming as soon as the
    /// registry is updated — often before this method returns.
    pub fn submit_with(
        &self,
        catalog: &Catalog,
        plan: &Plan,
        schedule: &ExecutionSchedule,
        cost_params: &CostParameters,
    ) -> Result<QueryHandle> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(EngineError::RuntimeShutdown);
        }
        honor_submit_fault()?;
        let cache_baseline = cache::cache_stats();
        // Repeat submissions of the same plan shape reuse the cached
        // expansion instead of re-walking the plan per fragment.
        let extended = cache::cached_extended(catalog, plan, cost_params)?;
        self.submit_inner(catalog, plan, &extended, schedule, cache_baseline)
    }

    /// Submits a plan prepared by [`crate::cache::prepare`]: no expansion,
    /// no scheduling — straight to binding. Returns a plan error if the
    /// catalog mutated since preparation (callers re-prepare; the cache
    /// already evicted the stale entry on that lookup).
    pub fn submit_prepared(
        &self,
        catalog: &Catalog,
        prepared: &PreparedPlan,
    ) -> Result<QueryHandle> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(EngineError::RuntimeShutdown);
        }
        honor_submit_fault()?;
        let cache_baseline = cache::cache_stats();
        if !prepared.is_current(catalog) {
            return Err(EngineError::Plan(
                "prepared plan is stale: a referenced relation changed generation since \
                 preparation (re-prepare against the current catalog)"
                    .to_string(),
            ));
        }
        self.submit_inner(
            catalog,
            prepared.plan(),
            prepared.extended(),
            prepared.schedule(),
            cache_baseline,
        )
    }

    /// The shared back half of every submission path: validation, operator
    /// binding, queue-set construction and registration with the pool.
    fn submit_inner(
        &self,
        catalog: &Catalog,
        plan: &Plan,
        extended: &ExtendedPlan,
        schedule: &ExecutionSchedule,
        cache_baseline: CacheStats,
    ) -> Result<QueryHandle> {
        schedule.validate(plan)?;
        if !plan
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OperatorKind::Store { .. }))
        {
            return Err(EngineError::NoStoreOperator);
        }

        let order = plan.topological_order()?;
        let mut ops: Vec<OpRuntime> = Vec::with_capacity(plan.len());
        let mut index_of: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut stores: Vec<(String, Arc<BoundOperator>)> = Vec::new();

        // Bind operators and create the query's private queue set,
        // producers before consumers.
        for id in &order {
            let node = plan.node(*id)?;
            let ext_op = extended
                .operation(*id)
                // allow-panic: ExtendedPlan::from_plan above covered every
                // node of the same plan this order came from.
                .expect("extended plan covers every node");
            let op_schedule = schedule.operation(*id)?;

            let operator = Arc::new(bind_operator(
                catalog,
                plan,
                node,
                ext_op.instance_count(),
                schedule.discard_results(),
                schedule.build_parallelism(),
            )?);
            if let OperatorKind::Store { result_name } = &node.kind {
                stores.push((result_name.clone(), Arc::clone(&operator)));
            }

            let queues: Vec<Arc<ActivationQueue>> = ext_op
                .instances()
                .iter()
                .map(|info| {
                    Arc::new(ActivationQueue::new(
                        info.instance,
                        op_schedule.queue_capacity,
                        info.estimated_cost,
                    ))
                })
                .collect();
            let mut lpt_order: Vec<usize> = (0..queues.len()).collect();
            lpt_order.sort_by(|a, b| {
                queues[*b]
                    .estimated_cost()
                    .partial_cmp(&queues[*a].estimated_cost())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });

            index_of.insert(*id, ops.len());
            ops.push(OpRuntime {
                node: *id,
                name: node.name.clone(),
                operator,
                queues,
                strategy: op_schedule.strategy,
                cache_size: op_schedule.cache_size.max(1),
                consumer: None,
                lpt_order,
                inflight: CachePadded::new(AtomicUsize::new(0)),
                finished: AtomicBool::new(false),
                announced: AtomicBool::new(false),
                pending: CachePadded::new(AtomicU64::new(0)),
            });
        }

        // Wire consumer links.
        for id in &order {
            let producer_index = index_of[id];
            if let Some(consumer_id) = plan.consumers(*id).first() {
                let consumer_index = index_of[consumer_id];
                let consumer_node = plan.node(*consumer_id)?;
                let router = match consumer_node.kind.routing_column() {
                    Some(col) => {
                        let producer_schema = plan.output_schema(*id, catalog)?;
                        let column = producer_schema.column_index(col).map_err(|_| {
                            EngineError::Plan(format!(
                                "routing column `{col}` not found in the output of {}",
                                id
                            ))
                        })?;
                        Router::HashColumn {
                            column,
                            degree: ops[consumer_index].queues.len(),
                        }
                    }
                    None => Router::SameInstance,
                };
                ops[producer_index].consumer = Some(ConsumerLink {
                    consumer_index,
                    router,
                });
            }
        }

        // Inject control activations into triggered operations and close
        // their queues (no more activations will ever arrive there). A
        // fragment larger than the schedule's morsel size is split into
        // morsels — contiguous row ranges claimed one per pop — so several
        // workers can scan it concurrently; only the lead morsel counts as
        // a logical activation, keeping per-op activation counts identical
        // to the single-trigger model. Workers cannot see the query yet, so
        // the pending counts need no ordering care.
        let morsel_rows = schedule.morsel_rows().max(1);
        for op in &ops {
            let node = plan.node(op.node)?;
            if node.producer().is_none() {
                let mut pending = 0u64;
                for q in &op.queues {
                    let rows = op.operator.triggered_rows(q.instance());
                    match rows {
                        Some(card) if card > morsel_rows => {
                            // Queues are sized before workers can drain
                            // them, so never split past the capacity —
                            // pushing more than fits would block forever.
                            let step = morsel_rows.max(card.div_ceil(q.capacity()));
                            let mut start = 0;
                            while start < card {
                                let end = (start + step).min(card);
                                q.push(Activation::Morsel {
                                    start,
                                    end,
                                    lead: start == 0,
                                });
                                pending += 1;
                                start = end;
                            }
                        }
                        _ => {
                            // Small, empty or unsized fragments keep the
                            // paper's one whole-fragment trigger.
                            q.push(Activation::Trigger);
                            pending += 1;
                        }
                    }
                    q.close();
                }
                op.pending.store(pending, Ordering::SeqCst);
            }
        }

        let id = QueryId(self.inner.next_query.fetch_add(1, Ordering::SeqCst));
        let metrics: MetricsSlots = ops
            .iter()
            .map(|_| {
                (0..self.inner.pool_threads)
                    .map(|_| Mutex::new(ThreadMetrics::default()))
                    .collect()
            })
            .collect();
        let ops_remaining = AtomicUsize::new(ops.len());
        let query = Arc::new(QueryState {
            id,
            ops,
            stores,
            started: Instant::now(),
            cancelled: AtomicBool::new(false),
            ops_remaining,
            progress: AtomicU64::new(0),
            cache_baseline,
            metrics,
            cell: CompletionCell {
                outcome: Mutex::new(None),
                done: Condvar::new(),
            },
        });

        self.inner.queries.lock().push(Arc::clone(&query));
        // Re-check the shutdown flag now that the query is visible: a
        // concurrent `shutdown()` that drained the registry between the
        // check at the top of this method and the push above would leave
        // this query registered with no workers to run it — abort it
        // (idempotent against the race where shutdown DID see it) so the
        // caller gets the typed error either way instead of a hang.
        if self.inner.shutdown.load(Ordering::SeqCst) {
            abort_query(&self.inner, &query, EngineError::RuntimeShutdown);
            return Err(EngineError::RuntimeShutdown);
        }
        // Announce the triggered leaves (the only ops with queued work at
        // submit time); announce_op wakes the parked workers.
        for op_index in 0..query.ops.len() {
            if query.ops[op_index].pending.load(Ordering::SeqCst) > 0 {
                announce_op(&self.inner, &query, op_index);
            }
        }
        Ok(QueryHandle {
            query,
            inner: Arc::clone(&self.inner),
            taken: false,
        })
    }

    /// Retires the pool: rejects further submissions, wakes and joins every
    /// worker, and fails any query still registered with
    /// [`EngineError::RuntimeShutdown`] so no waiter ever hangs.
    ///
    /// In-flight queries are *not* drained to completion — callers that want
    /// a graceful drain (e.g. a server handling SIGTERM) stop submitting,
    /// wait for [`Runtime::live_queries`] to reach zero, then call this.
    /// Idempotent: the first call joins the workers, later calls (and the
    /// implicit one in `Drop`) are no-ops.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.idle.wake_all();
        let workers: Vec<JoinHandle<()>> = {
            let mut workers = self.workers.lock();
            workers.drain(..).collect()
        };
        for handle in workers {
            let _ = handle.join();
        }
        // Fail whatever is still registered so no waiter ever hangs.
        let leftover: Vec<Arc<QueryState>> = {
            let mut queries = self.inner.queries.lock();
            queries.drain(..).collect()
        };
        self.inner.ready.lock().clear();
        for query in leftover {
            query.complete(Err(EngineError::RuntimeShutdown));
        }
    }

    /// Whether [`Runtime::shutdown`] was called (or the runtime is mid-drop):
    /// submissions are being rejected with [`EngineError::RuntimeShutdown`].
    pub fn is_shut_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A handle to a query submitted to a [`Runtime`].
///
/// The handle is detachable: dropping it does **not** cancel the query
/// (use [`QueryHandle::cancel`] for that); the runtime finishes the work
/// and discards the unobserved outcome.
pub struct QueryHandle {
    query: Arc<QueryState>,
    inner: Arc<RuntimeInner>,
    /// Whether `try_outcome` already moved the outcome out of the cell.
    taken: bool,
}

impl fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryHandle")
            .field("id", &self.query.id)
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl QueryHandle {
    /// The runtime-unique id of the submitted query.
    pub fn id(&self) -> QueryId {
        self.query.id
    }

    /// Whether the outcome is available (completed, cancelled or failed).
    pub fn is_finished(&self) -> bool {
        self.taken || self.query.cell.outcome.lock().is_some()
    }

    /// Blocks until the query completes and returns its outcome. Returns
    /// [`EngineError::QueryCancelled`] if it was cancelled,
    /// [`EngineError::RuntimeShutdown`] if the runtime was dropped first,
    /// and [`EngineError::OutcomeTaken`] if a prior
    /// [`QueryHandle::try_outcome`] already consumed the outcome.
    pub fn wait(self) -> Result<ExecutionOutcome> {
        if self.taken {
            return Err(EngineError::OutcomeTaken);
        }
        let mut slot = self.query.cell.outcome.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            self.query.cell.done.wait(&mut slot);
        }
    }

    /// Like [`QueryHandle::wait`] with a deadline: blocks for at most
    /// `timeout` and returns [`EngineError::WaitTimeout`] if the query has
    /// not completed by then. On timeout the query keeps running and the
    /// handle stays fully usable — wait again, poll, or [`cancel`] it (a
    /// server enforcing request deadlines does exactly that). On any other
    /// return the outcome is consumed: a later wait reports
    /// [`EngineError::OutcomeTaken`].
    ///
    /// [`cancel`]: QueryHandle::cancel
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<ExecutionOutcome> {
        if self.taken {
            return Err(EngineError::OutcomeTaken);
        }
        let deadline = Instant::now() + timeout;
        let mut slot = self.query.cell.outcome.lock();
        loop {
            if let Some(result) = slot.take() {
                self.taken = true;
                return result;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(EngineError::WaitTimeout);
            }
            self.query.cell.done.wait_for(&mut slot, deadline - now);
        }
    }

    /// Like [`QueryHandle::wait_timeout`], but a timeout **cancels the
    /// query** instead of leaving it running: its queues are closed and
    /// drained, the admission slot ([`Runtime::live_queries`]) is released
    /// immediately, and the typed [`EngineError::DeadlineExceeded`] is
    /// returned. This is the deadline primitive a server wants —
    /// `wait_timeout` alone leaks the timed-out query, which keeps burning
    /// workers and holding its slot until it finishes naturally.
    ///
    /// The outcome is always consumed, on success and on timeout alike; if
    /// the query completes in the race window between the timeout and the
    /// cancellation, the completed outcome wins and is returned.
    pub fn wait_timeout_or_cancel(&mut self, timeout: Duration) -> Result<ExecutionOutcome> {
        match self.wait_timeout(timeout) {
            Err(EngineError::WaitTimeout) => {
                let error = EngineError::DeadlineExceeded {
                    query: self.query.id.0,
                };
                abort_query(&self.inner, &self.query, error.clone());
                self.taken = true;
                // abort_query seals an outcome unless a natural completion
                // won the race — either way one is there to take.
                self.query.cell.outcome.lock().take().unwrap_or(Err(error))
            }
            other => other,
        }
    }

    /// Returns the outcome if the query already completed, without
    /// blocking. The first `Some` moves the outcome out of the handle;
    /// later calls return `None` and a later `wait()` reports
    /// [`EngineError::OutcomeTaken`].
    pub fn try_outcome(&mut self) -> Option<Result<ExecutionOutcome>> {
        let result = self.query.cell.outcome.lock().take();
        if result.is_some() {
            self.taken = true;
        }
        result
    }

    /// Cancels the query: its queues are closed and drained, in-flight
    /// output is discarded, and `wait()` reports
    /// [`EngineError::QueryCancelled`]. Idempotent; a query that already
    /// completed keeps its outcome. The pool stays fully reusable.
    pub fn cancel(&self) {
        if self
            .query
            .cancelled
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        abort_query(
            &self.inner,
            &self.query,
            EngineError::QueryCancelled {
                query: self.query.id.0,
            },
        );
    }
}

/// Tears a query down exceptionally: marks it cancelled so workers drop its
/// remaining work, closes and drains every queue (releasing buffered
/// memory immediately), removes it from the registry and seals `error` into
/// the completion cell — unless an outcome was already sealed, which wins.
fn abort_query(inner: &RuntimeInner, query: &QueryState, error: EngineError) {
    query.cancelled.store(true, Ordering::SeqCst);
    for op in &query.ops {
        for q in &op.queues {
            q.close();
        }
    }
    for op in &query.ops {
        for q in &op.queues {
            let _ = q.try_pop_batch(usize::MAX);
        }
    }
    inner.remove_query(query.id);
    query.complete(Err(error));
}

/// Honors an installed fault rule at `engine.runtime.submit`, shared by
/// every submission path.
fn honor_submit_fault() -> Result<()> {
    match faults::hit(faults::points::RUNTIME_SUBMIT) {
        Some(FaultAction::Error) | Some(FaultAction::Drop) => Err(EngineError::FaultInjected {
            point: faults::points::RUNTIME_SUBMIT.to_string(),
        }),
        Some(FaultAction::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(FaultAction::Panic) => {
            // allow-panic: FaultAction::Panic is the injected-crash
            // contract of the fault registry.
            panic!("injected fault at {}", faults::points::RUNTIME_SUBMIT)
        }
        None => Ok(()),
    }
}

/// Binds a plan node to a physical operator over catalog fragments.
/// `discard_results` selects counting stores (cardinalities without
/// materialisation); `build_shards` is handed to the join operators'
/// temporary hash-index builds (`HashIndex::build_parallel`).
pub(crate) fn bind_operator(
    catalog: &Catalog,
    plan: &Plan,
    node: &dbs3_lera::OperatorNode,
    instance_count: usize,
    discard_results: bool,
    build_shards: usize,
) -> Result<BoundOperator> {
    match &node.kind {
        OperatorKind::Filter {
            relation,
            predicate,
        } => {
            let rel = catalog.get(relation)?;
            let bound = predicate.bind(relation, rel.schema())?;
            Ok(BoundOperator::Filter(FilterOperator::new(rel, bound)))
        }
        OperatorKind::Transmit { relation, .. } => {
            let rel = catalog.get(relation)?;
            Ok(BoundOperator::Transmit(TransmitOperator::new(rel)))
        }
        OperatorKind::Join {
            outer,
            inner_relation,
            condition,
            algorithm,
        } => {
            let inner = catalog.get(inner_relation)?;
            let inner_column = inner.schema().column_index(&condition.inner_column)?;
            // The inner relation's generation keys the engine-wide shared
            // build-index cache: every query binding this (relation,
            // generation) pair shares one build per fragment.
            let generation = catalog.generation(inner_relation);
            match outer {
                OuterInput::Fragment { relation } => {
                    let outer_rel = catalog.get(relation)?;
                    let outer_column = outer_rel.schema().column_index(&condition.outer_column)?;
                    Ok(BoundOperator::TriggeredJoin(
                        TriggeredJoinOperator::new(
                            outer_rel,
                            inner,
                            outer_column,
                            inner_column,
                            *algorithm,
                        )
                        .with_build_shards(build_shards)
                        .with_shared_generation(generation),
                    ))
                }
                OuterInput::Pipeline => {
                    // allow-panic: Plan::validate rejected pipeline joins
                    // without a producer edge before binding started.
                    let producer = node.producer().expect("validated");
                    let incoming_schema = plan.output_schema(producer, catalog)?;
                    let outer_column = incoming_schema.column_index(&condition.outer_column)?;
                    Ok(BoundOperator::PipelinedJoin(
                        PipelinedJoinOperator::new(inner, outer_column, inner_column, *algorithm)
                            .with_build_shards(build_shards)
                            .with_shared_generation(generation),
                    ))
                }
            }
        }
        OperatorKind::Store { result_name } => Ok(BoundOperator::Store(if discard_results {
            StoreOperator::counting(result_name.clone(), instance_count)
        } else {
            StoreOperator::new(result_name.clone(), instance_count)
        })),
    }
}

/// Per-worker scan state: the worker's RNG (for the `Random` strategy's
/// per-poll shuffle) and a reused visit-order buffer.
struct WorkerCtx {
    id: usize,
    rng: StdRng,
    scratch: Vec<usize>,
}

/// The body of one pool worker: pop the front ready-deque entry, re-push
/// it at the tail, process one batch. Work finding is O(1) in live
/// queries and operations, and the idle path allocates nothing. The
/// re-push *before* processing keeps the op discoverable while this batch
/// runs, so sibling workers converge on the same operation (morsel
/// parallelism) and entries rotate FIFO across every ready op of every
/// query (cross-query fairness).
fn worker_loop(inner: &Arc<RuntimeInner>, worker: usize) {
    let mut ctx = WorkerCtx {
        id: worker,
        rng: StdRng::seed_from_u64(0x5eed_0000 ^ worker as u64),
        scratch: Vec::new(),
    };
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Epoch before the pop: an announcement landing after this read
        // makes park() return immediately, so no wakeup between the empty
        // pop and the park is lost.
        let epoch = inner.idle.current();
        let Some((query, op_index)) = inner.pop_ready() else {
            inner.idle.park(epoch);
            continue;
        };
        let op = &query.ops[op_index];
        if !query.is_live()
            || op.finished.load(Ordering::SeqCst)
            || op.pending.load(Ordering::SeqCst) == 0
        {
            retire_ready_entry(inner, &query, op_index);
            continue;
        }
        inner.push_ready(Arc::clone(&query), op_index);
        try_process_op(inner, &query, op_index, &mut ctx);
    }
}

/// The body of the optional watchdog thread (see [`Runtime::with_watchdog`]):
/// samples every live query's progress counter a few times per stall
/// interval and aborts queries whose counter has not moved for `stall_after`
/// with [`EngineError::QueryStuck`]. Aborting seals the outcome and frees
/// the admission slot, so a waiter blocked on the handle gets the typed
/// error instead of hanging forever behind a wedged worker.
fn watchdog_loop(inner: &Arc<RuntimeInner>, stall_after: Duration) {
    let poll = (stall_after / 4)
        .max(Duration::from_millis(10))
        .min(Duration::from_millis(250));
    // Last observed (progress, time-of-change) per query id.
    let mut seen: BTreeMap<u64, (u64, Instant)> = BTreeMap::new();
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(poll);
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let live: Vec<Arc<QueryState>> = inner.queries.lock().clone();
        let now = Instant::now();
        let mut alive: Vec<u64> = Vec::with_capacity(live.len());
        for query in &live {
            let id = query.id.0;
            alive.push(id);
            let progress = query.progress.load(Ordering::SeqCst);
            let entry = seen.entry(id).or_insert((progress, now));
            if entry.0 != progress {
                *entry = (progress, now);
                continue;
            }
            let stalled = now.duration_since(entry.1);
            if stalled >= stall_after {
                abort_query(
                    inner,
                    query,
                    EngineError::QueryStuck {
                        query: id,
                        stalled_for_ms: stalled.as_millis() as u64,
                    },
                );
            }
        }
        seen.retain(|id, _| alive.contains(id));
    }
}

/// What the guarded section of [`try_process_op`] produced: real work (or
/// an empty probe), or an injected `error`/`drop` fault asking for a typed
/// failure.
enum Processed {
    Worked(bool),
    Fault,
}

/// Attempts to pop and process one batch of `op`'s activations. Returns
/// whether any work was done.
///
/// Processing runs under `catch_unwind`: a panicking operator must neither
/// kill the pool worker nor leave the in-flight guard elevated forever
/// (which would hang every waiter) — instead the query is aborted with the
/// typed [`EngineError::WorkerPanicked`] the scoped-thread executor used to
/// produce, and the pool keeps serving other queries. The
/// `engine.worker.process` fault point sits inside the guarded section, so
/// injected panics exercise exactly this containment path.
fn try_process_op(
    inner: &Arc<RuntimeInner>,
    query: &Arc<QueryState>,
    op_index: usize,
    ctx: &mut WorkerCtx,
) -> bool {
    let op = &query.ops[op_index];
    if op.finished.load(Ordering::SeqCst) || op.pending.load(Ordering::SeqCst) == 0 {
        return false;
    }
    // The in-flight guard goes up before the pop: once a queue looks empty
    // to another worker, this worker's claim on the batch it popped is
    // already visible, so the operation can never be declared finished
    // while tuples are still being processed.
    op.inflight.fetch_add(1, Ordering::SeqCst);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        match faults::hit(faults::points::WORKER_PROCESS) {
            // allow-panic: FaultAction::Panic is the injected-crash contract;
            // catch_unwind right above contains it into WorkerPanicked.
            Some(FaultAction::Panic) => panic!(
                "injected fault at {} in `{}`",
                faults::points::WORKER_PROCESS,
                op.name
            ),
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(FaultAction::Error) | Some(FaultAction::Drop) => return Processed::Fault,
            None => {}
        }
        match select_and_pop(op, inner.pool_threads, ctx) {
            Some((queue_index, batch)) => {
                process_batch(inner, query, op_index, queue_index, batch, ctx.id);
                Processed::Worked(true)
            }
            None => {
                // The pending hint said there was work but every queue
                // probe came up empty (another worker got there first).
                let mut slot = query.metrics[op_index][ctx.id].lock();
                slot.thread = ctx.id;
                slot.idle_polls += 1;
                Processed::Worked(false)
            }
        }
    }));
    // Seal the typed failure BEFORE dropping the in-flight guard: a batch
    // lost to the unwind mid-processing must never be papered over by a
    // sibling worker's termination accounting cascading to finalize_query
    // and sealing a *partial* Ok. Aborting first wins the first-writer race
    // on the completion cell, so the later Ok (if any) is discarded.
    match &outcome {
        Ok(Processed::Worked(_)) => {}
        Ok(Processed::Fault) => {
            // An installed fault rule asked for a typed failure at this
            // point; the batch was never popped, so aborting loses nothing.
            abort_query(
                inner,
                query,
                EngineError::FaultInjected {
                    point: faults::points::WORKER_PROCESS.to_string(),
                },
            );
        }
        Err(_) => {
            // Nested help_drain guards may have been skipped by the unwind,
            // leaving other operations' inflight counts elevated — harmless,
            // because aborting seals the outcome and the query is never
            // finalized through the counting path.
            abort_query(
                inner,
                query,
                EngineError::WorkerPanicked {
                    operation: op.name.clone(),
                },
            );
        }
    }
    if op.inflight.fetch_sub(1, Ordering::SeqCst) == 1 {
        try_finish_op(inner, query, op_index);
    }
    match outcome {
        Ok(Processed::Worked(did_work)) => {
            if did_work {
                query.progress.fetch_add(1, Ordering::Relaxed);
            }
            did_work
        }
        Ok(Processed::Fault) | Err(_) => true,
    }
}

/// Selects the next queue of `op` for this worker and pops up to
/// `cache_size` logical activations from it.
///
/// Queue ownership follows the paper's main/secondary split, projected onto
/// the pool: queue `q` is a main queue of worker `q % pool_threads`. Main
/// queues are visited before secondary ones; within each group `Random`
/// shuffles the visit order per poll and `LPT` uses the static
/// decreasing-cost order.
fn select_and_pop(
    op: &OpRuntime,
    pool_threads: usize,
    ctx: &mut WorkerCtx,
) -> Option<(usize, Vec<Activation>)> {
    for group in 0..2 {
        let is_main_group = group == 0;
        ctx.scratch.clear();
        match op.strategy {
            ConsumptionStrategy::Lpt => ctx.scratch.extend(
                op.lpt_order
                    .iter()
                    .copied()
                    .filter(|q| (q % pool_threads == ctx.id) == is_main_group),
            ),
            ConsumptionStrategy::Random => {
                ctx.scratch.extend(
                    (0..op.queues.len()).filter(|q| (q % pool_threads == ctx.id) == is_main_group),
                );
                ctx.scratch.shuffle(&mut ctx.rng);
            }
        }
        for i in 0..ctx.scratch.len() {
            let queue_index = ctx.scratch[i];
            let popped = op.queues[queue_index].try_pop_batch(op.cache_size);
            if !popped.is_empty() {
                let weight: u64 = popped.iter().map(|a| a.queue_weight() as u64).sum();
                op.pending.fetch_sub(weight, Ordering::SeqCst);
                return Some((queue_index, popped));
            }
        }
    }
    None
}

thread_local! {
    /// Reusable scatter-buffer sets, one entry per nested [`help_drain`]
    /// depth, so [`process_batch`] does not allocate a consumer-degree-sized
    /// `Vec<Vec<Tuple>>` on every popped batch. Workers are long-lived, so
    /// the warm buffers amortise across every query the thread serves.
    static SCATTER_SCRATCH: std::cell::RefCell<Vec<Vec<Vec<Tuple>>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Takes a recycled scatter-buffer set resized to `degree` (all buffers
/// empty), or builds a fresh one.
fn take_scatter_buffers(degree: usize) -> Vec<Vec<Tuple>> {
    let mut buffers = SCATTER_SCRATCH
        .with(|scratch| scratch.borrow_mut().pop())
        .unwrap_or_default();
    buffers.resize_with(degree, Vec::new);
    buffers
}

/// Returns a scatter-buffer set to the thread-local pool. Buffers are
/// cleared so no tuple outlives its batch, and the pool is bounded by the
/// plausible help-recursion depth.
fn recycle_scatter_buffers(mut buffers: Vec<Vec<Tuple>>) {
    buffers.iter_mut().for_each(Vec::clear);
    SCATTER_SCRATCH.with(|scratch| {
        let mut pool = scratch.borrow_mut();
        if pool.len() < 8 {
            pool.push(buffers);
        }
    });
}

/// Processes one popped batch of activations of `op`, scattering the
/// produced tuples to the consumer's queues and recording metrics.
///
/// Routing is the producer-side activation cache of the paper, specialised
/// per [`Router`]:
///
/// * [`Router::SameInstance`] (co-located stores): the operator's whole
///   output vector ships to the one destination queue **as-is** — one
///   transport activation per processed activation, no per-tuple re-collect
///   through an intermediate buffer.
/// * [`Router::HashColumn`] (dynamic redistribution): tuples scatter into
///   per-destination buffers flushed at `CacheSize` tuples, so `CacheSize`
///   stays the transport-batch granularity of every redistributing hop.
///
/// The caller holds the operation's in-flight guard, so the producer-side
/// scatter buffers live entirely within this call — nothing can be stranded
/// when the operation is later declared finished.
fn process_batch(
    inner: &Arc<RuntimeInner>,
    query: &Arc<QueryState>,
    op_index: usize,
    queue_index: usize,
    batch: Vec<Activation>,
    worker: usize,
) {
    let op = &query.ops[op_index];
    let started = Instant::now();
    let consumer_degree = op
        .consumer
        .as_ref()
        .map(|link| query.ops[link.consumer_index].queues.len())
        .unwrap_or(0);
    // Scatter buffers exist only for hash redistribution; a co-located
    // consumer receives output vectors directly. Ops that need no buffers
    // must not touch the thread-local scratch at all — popping the warm set
    // just to truncate it to zero would throw away the grown buffer
    // capacities the cache exists to preserve.
    let needs_buffers = matches!(
        op.consumer.as_ref().map(|link| &link.router),
        Some(Router::HashColumn { .. })
    );
    let mut buffers = if needs_buffers {
        take_scatter_buffers(consumer_degree)
    } else {
        Vec::new()
    };
    let mut flushes = 0u64;
    let mut logical = 0u64;
    let mut tuples_out = 0u64;
    // Wall time spent helping congested downstream operations; that time is
    // recorded against *their* metrics slots by the nested process_batch,
    // so it is subtracted from this operation's busy time below.
    let mut helped = Duration::ZERO;

    for activation in batch {
        // A cancelled query's remaining work is dropped; on shutdown the
        // query will be failed by the runtime's Drop anyway.
        if query.cancelled.load(Ordering::Relaxed) || inner.shutdown.load(Ordering::Relaxed) {
            break;
        }
        // Metrics stay in the paper's per-tuple model: a data activation
        // counts one logical activation per batched tuple.
        logical += activation.logical_len() as u64;
        let out = op.operator.process(queue_index, activation);
        tuples_out += out.len() as u64;
        let Some(link) = &op.consumer else { continue };
        match &link.router {
            Router::SameInstance => {
                // Direct ship: the whole output batch has exactly one
                // destination, so it becomes one transport activation
                // without being re-collected tuple by tuple.
                if !out.is_empty() {
                    let dest = queue_index % consumer_degree.max(1);
                    flush_to(
                        inner,
                        query,
                        link.consumer_index,
                        dest,
                        out,
                        worker,
                        &mut helped,
                    );
                    flushes += 1;
                }
            }
            Router::HashColumn { column, degree } => {
                for tuple in out {
                    let dest = (tuple.hash_key(&[*column]) % *degree as u64) as usize;
                    buffers[dest].push(tuple);
                    if buffers[dest].len() >= op.cache_size {
                        let full = std::mem::replace(
                            &mut buffers[dest],
                            Vec::with_capacity(op.cache_size.min(1024)),
                        );
                        flush_to(
                            inner,
                            query,
                            link.consumer_index,
                            dest,
                            full,
                            worker,
                            &mut helped,
                        );
                        flushes += 1;
                    }
                }
            }
        }
    }
    if let Some(link) = &op.consumer {
        for (dest, buffer) in buffers.iter_mut().enumerate() {
            if !buffer.is_empty() {
                flush_to(
                    inner,
                    query,
                    link.consumer_index,
                    dest,
                    std::mem::take(buffer),
                    worker,
                    &mut helped,
                );
                flushes += 1;
            }
        }
    }
    if needs_buffers {
        recycle_scatter_buffers(buffers);
    }

    // Merge this batch's contribution into the worker's metrics slot. Time
    // spent helping a congested downstream operation is charged to that
    // operation (by its own nested process_batch) and subtracted here, so
    // summed busy time never exceeds wall-clock × workers.
    let mut slot = query.metrics[op_index][worker].lock();
    slot.thread = worker;
    slot.activations += logical;
    slot.tuples_out += tuples_out;
    slot.busy += started.elapsed().saturating_sub(helped);
    slot.cache_flushes += flushes;
    if queue_index % inner.pool_threads == worker {
        slot.main_queue_hits += logical;
    } else {
        slot.secondary_queue_hits += logical;
    }
}

/// Delivers one transport batch to a consumer queue without ever blocking
/// the pool: on a full queue the worker *helps drain that very queue* (pops
/// a batch and processes it exactly as the consumer would) and retries; on
/// a closed queue (cancelled query) the batch is dropped. Help time is
/// accumulated into `helped` so the caller can keep its own busy metric
/// honest.
#[allow(clippy::too_many_arguments)]
fn flush_to(
    inner: &Arc<RuntimeInner>,
    query: &Arc<QueryState>,
    consumer_index: usize,
    dest: usize,
    tuples: Vec<Tuple>,
    worker: usize,
    helped: &mut Duration,
) {
    let consumer = &query.ops[consumer_index];
    let mut activation = Activation::Data(TupleBatch::new(tuples));
    let weight = activation.queue_weight() as u64;
    loop {
        if query.cancelled.load(Ordering::Relaxed) || inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // The pending count goes up before the push so a concurrent popper
        // can never decrement it below zero; a refused push takes it back.
        consumer.pending.fetch_add(weight, Ordering::SeqCst);
        match consumer.queues[dest].try_push(activation) {
            Ok(()) => {
                announce_op(inner, query, consumer_index);
                return;
            }
            Err(TryPushError::Closed(_)) => {
                consumer.pending.fetch_sub(weight, Ordering::SeqCst);
                return;
            }
            Err(TryPushError::Full(back)) => {
                consumer.pending.fetch_sub(weight, Ordering::SeqCst);
                activation = back;
                let help_started = Instant::now();
                help_drain(inner, query, consumer_index, dest, worker);
                *helped += help_started.elapsed();
            }
        }
    }
}

/// Pops one batch from the congested consumer queue and processes it on
/// behalf of the consumer operation (cooperative backpressure). Recursion
/// through [`process_batch`] is bounded by the pipeline depth.
fn help_drain(
    inner: &Arc<RuntimeInner>,
    query: &Arc<QueryState>,
    consumer_index: usize,
    dest: usize,
    worker: usize,
) {
    let consumer = &query.ops[consumer_index];
    consumer.inflight.fetch_add(1, Ordering::SeqCst);
    let popped = consumer.queues[dest].try_pop_batch(consumer.cache_size);
    if popped.is_empty() {
        // Another worker drained it first; capacity will free up shortly.
        std::thread::yield_now();
    } else {
        let weight: u64 = popped.iter().map(|a| a.queue_weight() as u64).sum();
        consumer.pending.fetch_sub(weight, Ordering::SeqCst);
        process_batch(inner, query, consumer_index, dest, popped, worker);
    }
    if consumer.inflight.fetch_sub(1, Ordering::SeqCst) == 1 {
        try_finish_op(inner, query, consumer_index);
    }
}

/// Declares `op` finished if its queues are exhausted and nothing is in
/// flight; closing the consumer's queues then cascades the check down the
/// pipeline. The query completes when its last operation finishes.
fn try_finish_op(inner: &Arc<RuntimeInner>, query: &Arc<QueryState>, op_index: usize) {
    let op = &query.ops[op_index];
    // Order matters: exhaustion is read *before* the in-flight count. A
    // worker claiming a batch raises `inflight` before popping, so once a
    // queue is observed empty here, any claim on its last batch is already
    // visible in `inflight`. Reading inflight first would open a window
    // where another worker pops the final batch between the two reads and
    // this thread declares the operation finished while those tuples are
    // still being processed (their output would flush into closed queues
    // and vanish).
    if op.finished.load(Ordering::SeqCst)
        || !op.queues.iter().all(|q| q.is_exhausted())
        || op.inflight.load(Ordering::SeqCst) != 0
    {
        return;
    }
    if op
        .finished
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return;
    }
    if let Some(link) = &op.consumer {
        for q in &query.ops[link.consumer_index].queues {
            q.close();
        }
    }
    let remaining = query.ops_remaining.fetch_sub(1, Ordering::SeqCst) - 1;
    if let Some(link) = &op.consumer {
        // The consumer may already be drained (e.g. nothing matched):
        // re-check it now that its queues are closed.
        try_finish_op(inner, query, link.consumer_index);
    }
    if remaining == 0 {
        finalize_query(inner, query);
    }
}

/// Seals a completed query: collects per-operation metrics and results,
/// removes the query from the registry and fills the completion cell.
fn finalize_query(inner: &Arc<RuntimeInner>, query: &Arc<QueryState>) {
    let elapsed = query.started.elapsed();
    let operations: Vec<OperationMetrics> = query
        .ops
        .iter()
        .enumerate()
        .map(|(op_index, op)| {
            // A slot counts if it recorded any work at all: a thread that
            // only processed non-lead morsels has zero logical activations
            // but real busy time and output tuples.
            let mut threads: Vec<ThreadMetrics> = query.metrics[op_index]
                .iter()
                .map(|slot| slot.lock().clone())
                .filter(|tm| tm.activations > 0 || tm.tuples_out > 0 || tm.busy > Duration::ZERO)
                .collect();
            if threads.is_empty() {
                // No worker ever touched the operation (an empty pipeline);
                // keep the metrics shape non-degenerate.
                threads.push(ThreadMetrics::default());
            }
            OperationMetrics {
                node: op.node,
                name: op.name.clone(),
                strategy: op.strategy,
                queues: op.queues.len(),
                threads,
            }
        })
        .collect();
    let metrics = ExecutionMetrics {
        elapsed,
        total_threads: inner.pool_threads,
        operations,
        caches: cache::cache_stats().since(&query.cache_baseline),
    };

    let mut results = BTreeMap::new();
    let mut cardinalities = BTreeMap::new();
    for (name, operator) in &query.stores {
        if let BoundOperator::Store(store) = operator.as_ref() {
            cardinalities.insert(name.clone(), store.stored_count());
            results.insert(name.clone(), store.take_all());
        }
    }

    inner.remove_query(query.id);
    query.complete(Ok(ExecutionOutcome {
        results,
        cardinalities,
        metrics,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{OperationSchedule, Scheduler, SchedulerOptions};
    use dbs3_lera::{plans, JoinAlgorithm};
    use dbs3_storage::{
        PartitionSpec, PartitionedRelation, Relation, WisconsinConfig, WisconsinGenerator,
    };

    fn build_catalog(a_card: usize, b_card: usize, degree: usize) -> (Catalog, Relation, Relation) {
        let gen = WisconsinGenerator::new();
        let a = gen.generate(&WisconsinConfig::narrow("A", a_card)).unwrap();
        let b = gen
            .generate(&WisconsinConfig::narrow("Bprime", b_card))
            .unwrap();
        let spec = PartitionSpec::on("unique1", degree, 4);
        let a_part = PartitionedRelation::from_relation(&a, spec.clone()).unwrap();
        let a_ref = a_part.reassemble();
        let b_part = PartitionedRelation::from_relation(&b, spec).unwrap();
        let b_ref = b_part.reassemble();
        let mut cat = Catalog::new();
        cat.register(a_part).unwrap();
        cat.register(b_part).unwrap();
        (cat, a_ref, b_ref)
    }

    fn schedule_for(plan: &Plan, cat: &Catalog, threads: usize) -> ExecutionSchedule {
        let ext = ExtendedPlan::from_plan(plan, cat, &CostParameters::default()).unwrap();
        Scheduler::build(
            plan,
            &ext,
            &SchedulerOptions::default().with_total_threads(threads),
        )
        .unwrap()
    }

    #[test]
    fn single_query_matches_reference_join() {
        let (cat, a_ref, b_ref) = build_catalog(800, 80, 10);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 4);
        let runtime = Runtime::new(4).unwrap();
        let outcome = runtime
            .submit(&cat, &plan, &schedule)
            .unwrap()
            .wait()
            .unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
        assert_eq!(outcome.cardinalities["Result"], expected.len());
        assert!(outcome.metrics.total_activations() > 0);
        assert_eq!(runtime.live_queries(), 0);
    }

    #[test]
    fn sixteen_concurrent_queries_share_one_pool() {
        let (cat, a_ref, b_ref) = build_catalog(1_000, 100, 8);
        let expected = a_ref
            .reference_join(&b_ref, "unique1", "unique1")
            .unwrap()
            .len();
        let plans: Vec<Plan> = vec![
            plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash),
            plans::assoc_join("Bprime", "A", "unique1", JoinAlgorithm::Hash),
            plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::NestedLoop),
            plans::assoc_join("Bprime", "A", "unique1", JoinAlgorithm::NestedLoop),
        ];
        let runtime = Runtime::new(4).unwrap();
        let handles: Vec<QueryHandle> = (0..16)
            .map(|i| {
                let plan = &plans[i % plans.len()];
                let schedule = schedule_for(plan, &cat, 4);
                runtime.submit(&cat, plan, &schedule).unwrap()
            })
            .collect();
        // All sixteen are registered (or already completing) concurrently.
        for handle in handles {
            let outcome = handle.wait().unwrap();
            assert_eq!(outcome.cardinalities["Result"], expected);
        }
        assert_eq!(runtime.live_queries(), 0);
    }

    #[test]
    fn tiny_queue_capacity_does_not_deadlock_the_shared_pool() {
        let (cat, _, b_ref) = build_catalog(4_000, 400, 16);
        let plan = plans::assoc_join("Bprime", "A", "unique1", JoinAlgorithm::Hash);
        let mut per_node = BTreeMap::new();
        for node in plan.nodes() {
            per_node.insert(
                node.id,
                OperationSchedule {
                    threads: 1,
                    strategy: ConsumptionStrategy::Random,
                    queue_capacity: 2,
                    cache_size: 1,
                },
            );
        }
        let schedule = ExecutionSchedule::from_parts(per_node);
        let runtime = Runtime::new(2).unwrap();
        let outcome = runtime
            .submit(&cat, &plan, &schedule)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(outcome.results["Result"].len(), b_ref.cardinality());
    }

    #[test]
    fn cancel_returns_typed_error_and_pool_stays_reusable() {
        let (cat, a_ref, b_ref) = build_catalog(20_000, 2_000, 10);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::NestedLoop);
        let schedule = schedule_for(&plan, &cat, 2);
        let runtime = Runtime::new(2).unwrap();
        let handle = runtime.submit(&cat, &plan, &schedule).unwrap();
        let id = handle.id();
        handle.cancel();
        match handle.wait() {
            Err(EngineError::QueryCancelled { query }) => assert_eq!(query, id.0),
            other => panic!("expected QueryCancelled, got {other:?}"),
        }
        // The pool is immediately reusable for a fresh query.
        let quick = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&quick, &cat, 2);
        let outcome = runtime
            .submit(&cat, &quick, &schedule)
            .unwrap()
            .wait()
            .unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
    }

    #[test]
    fn dropping_the_runtime_fails_inflight_queries_without_hanging() {
        let (cat, _, _) = build_catalog(20_000, 2_000, 10);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::NestedLoop);
        let schedule = schedule_for(&plan, &cat, 2);
        let runtime = Runtime::new(2).unwrap();
        let handles: Vec<QueryHandle> = (0..4)
            .map(|_| runtime.submit(&cat, &plan, &schedule).unwrap())
            .collect();
        drop(runtime);
        for handle in handles {
            match handle.wait() {
                Ok(outcome) => assert!(outcome.cardinalities.contains_key("Result")),
                Err(EngineError::RuntimeShutdown) => {}
                Err(other) => panic!("unexpected error after shutdown: {other:?}"),
            }
        }
    }

    #[test]
    fn discarding_results_keeps_cardinalities_exact() {
        let (cat, a_ref, b_ref) = build_catalog(1_000, 100, 8);
        let plan = plans::assoc_join("Bprime", "A", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 3).with_discard_results(true);
        let runtime = Runtime::new(3).unwrap();
        let outcome = runtime
            .submit(&cat, &plan, &schedule)
            .unwrap()
            .wait()
            .unwrap();
        let expected = b_ref.reference_join(&a_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.cardinalities["Result"], expected.len());
        assert!(outcome.results["Result"].is_empty());
    }

    #[test]
    fn try_outcome_polls_then_takes_once() {
        let (cat, _, b_ref) = build_catalog(800, 80, 8);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 2);
        let runtime = Runtime::new(2).unwrap();
        let mut handle = runtime.submit(&cat, &plan, &schedule).unwrap();
        let outcome = loop {
            if let Some(result) = handle.try_outcome() {
                break result.unwrap();
            }
            std::thread::yield_now();
        };
        assert_eq!(outcome.results["Result"].len(), b_ref.cardinality());
        assert!(handle.is_finished());
        assert!(handle.try_outcome().is_none());
        assert!(matches!(handle.wait(), Err(EngineError::OutcomeTaken)));
    }

    #[test]
    fn empty_pipeline_terminates_on_the_runtime() {
        let gen = WisconsinGenerator::new();
        let a = gen.generate(&WisconsinConfig::narrow("A", 1_000)).unwrap();
        let b = Relation::new("Bprime", a.schema().clone(), Vec::new()).unwrap();
        let spec = PartitionSpec::on("unique1", 8, 2);
        let mut cat = Catalog::new();
        cat.register(PartitionedRelation::from_relation(&a, spec.clone()).unwrap())
            .unwrap();
        cat.register(PartitionedRelation::from_relation(&b, spec).unwrap())
            .unwrap();
        let plan = plans::assoc_join("Bprime", "A", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 4);
        let runtime = Runtime::new(4).unwrap();
        let outcome = runtime
            .submit(&cat, &plan, &schedule)
            .unwrap()
            .wait()
            .unwrap();
        assert!(outcome.results["Result"].is_empty());
        // Every operation still reports a (possibly empty) metrics entry.
        assert_eq!(outcome.metrics.operations.len(), 3);
    }

    // Panic containment (worker survives, typed `WorkerPanicked`) is pinned
    // in `tests/faults.rs` on the fault registry: installing a process-wide
    // fault plan inside this parallel unit-test binary would poison
    // unrelated tests, so every fault-injecting test lives in dedicated
    // integration-test binaries.

    #[test]
    fn zero_thread_pool_is_rejected() {
        assert!(matches!(
            Runtime::new(0),
            Err(EngineError::InvalidOptions(_))
        ));
    }

    #[test]
    fn submitting_a_storeless_plan_is_an_error() {
        let (cat, _, _) = build_catalog(200, 20, 4);
        // Build a plan whose store was... every helper plan stores; use the
        // executor's validation path instead: a schedule missing a node.
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = ExecutionSchedule::from_parts(BTreeMap::new());
        let runtime = Runtime::new(1).unwrap();
        assert!(runtime.submit(&cat, &plan, &schedule).is_err());
    }

    #[test]
    fn runtime_debug_shows_pool_shape() {
        let runtime = Runtime::new(2).unwrap();
        let rendered = format!("{runtime:?}");
        assert!(rendered.contains("pool_threads"));
        assert!(rendered.contains('2'));
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_later_submissions() {
        let (cat, _, _) = build_catalog(400, 40, 4);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 2);
        let runtime = Runtime::new(2).unwrap();
        // A completed query before shutdown works normally.
        runtime
            .submit(&cat, &plan, &schedule)
            .unwrap()
            .wait()
            .unwrap();
        assert!(!runtime.is_shut_down());
        runtime.shutdown();
        assert!(runtime.is_shut_down());
        // Second (and third) shutdown is a no-op, not a panic or a hang.
        runtime.shutdown();
        runtime.shutdown();
        match runtime.submit(&cat, &plan, &schedule) {
            Err(EngineError::RuntimeShutdown) => {}
            other => panic!("expected RuntimeShutdown, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_fails_inflight_queries_typed() {
        // A deliberately slow query: nested-loop join so the workers are
        // still busy when shutdown lands.
        let (cat, _, _) = build_catalog(20_000, 2_000, 4);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::NestedLoop);
        let schedule = schedule_for(&plan, &cat, 2);
        let runtime = Runtime::new(2).unwrap();
        let handle = runtime.submit(&cat, &plan, &schedule).unwrap();
        runtime.shutdown();
        match handle.wait() {
            // Workers may have finished the query before the flag landed.
            Ok(_) | Err(EngineError::RuntimeShutdown) => {}
            other => panic!("expected Ok or RuntimeShutdown, got {other:?}"),
        }
    }

    #[test]
    fn wait_timeout_returns_typed_and_keeps_the_handle_usable() {
        let (cat, a_ref, b_ref) = build_catalog(20_000, 2_000, 4);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::NestedLoop);
        let schedule = schedule_for(&plan, &cat, 2);
        let runtime = Runtime::new(2).unwrap();
        let mut handle = runtime.submit(&cat, &plan, &schedule).unwrap();
        // A zero timeout on a 20k x 2k nested-loop join cannot succeed.
        match handle.wait_timeout(Duration::ZERO) {
            Err(EngineError::WaitTimeout) => {}
            other => panic!("expected WaitTimeout, got {other:?}"),
        }
        // Documented contract: `wait_timeout` does NOT stop the query — it
        // keeps running (and keeps holding its admission slot). A server
        // enforcing deadlines must use `wait_timeout_or_cancel` instead.
        assert_eq!(runtime.live_queries(), 1);
        // The handle survives the timeout: a blocking wait still gets the
        // real outcome.
        let outcome = handle.wait().unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
    }

    #[test]
    fn wait_timeout_consumes_the_outcome_on_success() {
        let (cat, _, _) = build_catalog(400, 40, 4);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 2);
        let runtime = Runtime::new(2).unwrap();
        let mut handle = runtime.submit(&cat, &plan, &schedule).unwrap();
        let outcome = handle.wait_timeout(Duration::from_secs(60)).unwrap();
        assert!(!outcome.cardinalities.is_empty());
        match handle.wait_timeout(Duration::from_secs(60)) {
            Err(EngineError::OutcomeTaken) => {}
            other => panic!("expected OutcomeTaken, got {other:?}"),
        }
    }

    #[test]
    fn wait_timeout_or_cancel_frees_the_admission_slot() {
        let (cat, _, _) = build_catalog(20_000, 2_000, 4);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::NestedLoop);
        let schedule = schedule_for(&plan, &cat, 2);
        let runtime = Runtime::new(2).unwrap();
        let mut handle = runtime.submit(&cat, &plan, &schedule).unwrap();
        match handle.wait_timeout_or_cancel(Duration::ZERO) {
            Err(EngineError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // Unlike plain `wait_timeout`, the query is gone: the registry slot
        // is released the moment the outcome is sealed, even though a
        // worker may still be mid-batch on the cancelled work.
        assert_eq!(runtime.live_queries(), 0);
        // The outcome was consumed by the cancellation.
        assert!(handle.try_outcome().is_none());
    }

    #[test]
    fn wait_timeout_or_cancel_returns_the_outcome_when_in_time() {
        let (cat, _, _) = build_catalog(400, 40, 4);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 2);
        let runtime = Runtime::new(2).unwrap();
        let mut handle = runtime.submit(&cat, &plan, &schedule).unwrap();
        let outcome = handle
            .wait_timeout_or_cancel(Duration::from_secs(60))
            .unwrap();
        assert!(!outcome.cardinalities.is_empty());
    }

    #[test]
    fn watchdog_leaves_healthy_queries_alone() {
        let (cat, a_ref, b_ref) = build_catalog(800, 80, 8);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 2);
        let runtime = Runtime::with_watchdog(2, Duration::from_secs(30)).unwrap();
        let outcome = runtime
            .submit(&cat, &plan, &schedule)
            .unwrap()
            .wait()
            .unwrap();
        let expected = a_ref.reference_join(&b_ref, "unique1", "unique1").unwrap();
        assert_eq!(outcome.results["Result"].len(), expected.len());
        // Shutdown joins the watchdog thread along with the workers.
        runtime.shutdown();
    }

    #[test]
    fn zero_watchdog_interval_is_rejected() {
        assert!(matches!(
            Runtime::with_watchdog(2, Duration::ZERO),
            Err(EngineError::InvalidOptions(_))
        ));
    }

    #[test]
    fn queue_pressure_tracks_the_backlog() {
        let (cat, _, _) = build_catalog(400, 40, 4);
        let plan = plans::ideal_join("A", "Bprime", "unique1", JoinAlgorithm::Hash);
        let schedule = schedule_for(&plan, &cat, 2);
        let runtime = Runtime::new(1).unwrap();
        assert_eq!(runtime.queue_pressure(), 0);
        let handles: Vec<QueryHandle> = (0..4)
            .map(|_| runtime.submit(&cat, &plan, &schedule).unwrap())
            .collect();
        // With 4 queries just submitted on a 1-worker pool, at least one
        // still has buffered triggers (its own submit stored them before
        // the handle returned). Exact values are advisory — only the
        // "work exists" signal is contractual.
        assert!(runtime.live_queries() > 0);
        for handle in handles {
            handle.wait().unwrap();
        }
        // Drained pool: no live queries, no pressure.
        assert_eq!(runtime.live_queries(), 0);
        assert_eq!(runtime.queue_pressure(), 0);
    }
}
