//! Consumption strategies and main/secondary queue assignment.
//!
//! Two mechanisms control which activation queue a thread consumes from
//! (Section 3):
//!
//! * **Main vs secondary queues.** "For each operation, all activation
//!   queues are equally distributed among the associated threads and are
//!   marked as main queues. Therefore, each queue is the main queue of only
//!   one thread but each thread can have several main queues. A thread
//!   always tries to first consume the activations of the main queues. ...
//!   If all the main queues of a thread are empty, the thread would search
//!   in secondary queues."
//! * **Consumption strategy.** `Random` (default): the thread randomly
//!   chooses one queue among the non-empty ones. `LPT` (Longest Processing
//!   Time first): the thread chooses the queue with the most expensive
//!   activations, based on static fragment-size estimates — the heuristic
//!   recommended for skewed triggered operations.

use crate::queue::ActivationQueue;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// How a thread picks the next queue to consume from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsumptionStrategy {
    /// Pick a random non-empty queue (the paper's default).
    #[default]
    Random,
    /// Pick the non-empty queue with the largest estimated remaining cost
    /// ("Longest Processing Time first", Graham 1969).
    Lpt,
}

impl ConsumptionStrategy {
    /// Human-readable name for metrics and experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ConsumptionStrategy::Random => "random",
            ConsumptionStrategy::Lpt => "lpt",
        }
    }
}

/// Splits `queue_count` queues among `thread_count` threads as main queues:
/// queue `q` is the main queue of thread `q % thread_count`, so the split is
/// equal (±1) and every queue has exactly one owning thread.
pub fn main_queue_assignment(queue_count: usize, thread_count: usize) -> Vec<Vec<usize>> {
    assert!(thread_count > 0, "at least one thread");
    let mut assignment = vec![Vec::new(); thread_count];
    for q in 0..queue_count {
        assignment[q % thread_count].push(q);
    }
    assignment
}

/// Per-thread queue selection state: the thread's main queues, the remaining
/// (secondary) queues, and the strategy-specific visit order.
#[derive(Debug)]
pub struct QueueSelector {
    /// All queues of the operation (shared).
    queues: Vec<Arc<ActivationQueue>>,
    /// Indexes of this thread's main queues, in strategy order.
    main: Vec<usize>,
    /// Indexes of the secondary queues, in strategy order.
    secondary: Vec<usize>,
    strategy: ConsumptionStrategy,
    rng: StdRng,
    /// Reused visit-order buffer, so the per-poll shuffle of the `Random`
    /// strategy never allocates on the hot path.
    scratch: Vec<usize>,
}

impl QueueSelector {
    /// Builds the selector for one thread.
    ///
    /// `main_queues` are the indexes assigned to this thread by
    /// [`main_queue_assignment`]; every other queue index becomes secondary.
    pub fn new(
        queues: Vec<Arc<ActivationQueue>>,
        main_queues: Vec<usize>,
        strategy: ConsumptionStrategy,
        rng_seed: u64,
    ) -> Self {
        let secondary: Vec<usize> = (0..queues.len())
            .filter(|i| !main_queues.contains(i))
            .collect();
        let mut selector = QueueSelector {
            queues,
            main: main_queues,
            secondary,
            strategy,
            rng: StdRng::seed_from_u64(rng_seed),
            scratch: Vec::new(),
        };
        selector.apply_static_order();
        selector
    }

    /// Sorts main and secondary queue lists by decreasing estimated cost when
    /// the strategy is LPT (the order is static because the estimates are
    /// static fragment sizes).
    fn apply_static_order(&mut self) {
        if self.strategy == ConsumptionStrategy::Lpt {
            let queues = &self.queues;
            let by_cost_desc = |a: &usize, b: &usize| {
                queues[*b]
                    .estimated_cost()
                    .partial_cmp(&queues[*a].estimated_cost())
                    .unwrap_or(std::cmp::Ordering::Equal)
            };
            self.main.sort_by(by_cost_desc);
            self.secondary.sort_by(by_cost_desc);
        }
    }

    /// The thread's main queue indexes (strategy order).
    pub fn main_queues(&self) -> &[usize] {
        &self.main
    }

    /// The thread's secondary queue indexes (strategy order).
    pub fn secondary_queues(&self) -> &[usize] {
        &self.secondary
    }

    /// Selects the next queue to consume from and pops activations worth up
    /// to `batch` *logical* activations from it (whole transport batches, at
    /// least one).
    ///
    /// Main queues are always considered before secondary queues. Within each
    /// group the strategy decides the visiting order: `Random` shuffles the
    /// candidates each call, `Lpt` visits them in decreasing estimated cost.
    /// Returns the selected queue index and the popped activations, or `None`
    /// when every queue is currently empty.
    pub fn select_and_pop(
        &mut self,
        batch: usize,
    ) -> Option<(usize, Vec<crate::activation::Activation>)> {
        // Visit main queues first, then secondary queues.
        for group in 0..2 {
            let candidates = if group == 0 {
                &self.main
            } else {
                &self.secondary
            };
            // Build the visit order in the reused scratch buffer: LPT keeps
            // the static cost order, Random reshuffles each poll.
            self.scratch.clone_from(candidates);
            if self.strategy == ConsumptionStrategy::Random {
                self.scratch.shuffle(&mut self.rng);
            }
            for i in 0..self.scratch.len() {
                let q = self.scratch[i];
                let popped = self.queues[q].try_pop_batch(batch);
                if !popped.is_empty() {
                    return Some((q, popped));
                }
            }
        }
        None
    }

    /// Whether every queue of the operation is closed and drained — i.e. the
    /// thread can terminate.
    pub fn all_exhausted(&self) -> bool {
        self.queues.iter().all(|q| q.is_exhausted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use dbs3_storage::tuple::int_tuple;

    fn make_queues(costs: &[f64]) -> Vec<Arc<ActivationQueue>> {
        costs
            .iter()
            .enumerate()
            .map(|(i, &c)| Arc::new(ActivationQueue::new(i, 64, c)))
            .collect()
    }

    #[test]
    fn main_assignment_is_balanced_and_exclusive() {
        let a = main_queue_assignment(10, 3);
        assert_eq!(a.len(), 3);
        let sizes: Vec<usize> = a.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // Exclusive ownership.
        let mut all: Vec<usize> = a.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_queues_leaves_some_threads_without_mains() {
        let a = main_queue_assignment(2, 5);
        assert_eq!(a.iter().filter(|m| m.is_empty()).count(), 3);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(ConsumptionStrategy::Random.name(), "random");
        assert_eq!(ConsumptionStrategy::Lpt.name(), "lpt");
        assert_eq!(ConsumptionStrategy::default(), ConsumptionStrategy::Random);
    }

    #[test]
    fn main_queues_are_preferred() {
        let queues = make_queues(&[1.0, 1.0, 1.0, 1.0]);
        // Put one activation in a main queue (0) and one in a secondary (3).
        queues[0].push(Activation::single(int_tuple(&[0])));
        queues[3].push(Activation::single(int_tuple(&[3])));
        let mut sel =
            QueueSelector::new(queues.clone(), vec![0, 1], ConsumptionStrategy::Random, 1);
        let (q, _) = sel.select_and_pop(8).unwrap();
        assert_eq!(q, 0, "main queue must be drained before secondaries");
        let (q, _) = sel.select_and_pop(8).unwrap();
        assert_eq!(q, 3, "then the secondary queue is used");
        assert!(sel.select_and_pop(8).is_none());
    }

    #[test]
    fn lpt_prefers_expensive_queues() {
        let queues = make_queues(&[1.0, 100.0, 10.0]);
        for q in &queues {
            q.push(Activation::Trigger);
        }
        let mut sel =
            QueueSelector::new(queues.clone(), vec![0, 1, 2], ConsumptionStrategy::Lpt, 1);
        assert_eq!(sel.main_queues(), &[1, 2, 0]);
        let (first, _) = sel.select_and_pop(1).unwrap();
        assert_eq!(first, 1, "LPT picks the most expensive queue first");
        let (second, _) = sel.select_and_pop(1).unwrap();
        assert_eq!(second, 2);
    }

    #[test]
    fn random_visits_all_queues_eventually() {
        let queues = make_queues(&[1.0; 8]);
        for q in &queues {
            q.push(Activation::Trigger);
        }
        let mut sel = QueueSelector::new(
            queues.clone(),
            (0..8).collect(),
            ConsumptionStrategy::Random,
            42,
        );
        let mut seen = std::collections::HashSet::new();
        while let Some((q, _)) = sel.select_and_pop(1) {
            seen.insert(q);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn all_exhausted_requires_close_and_drain() {
        let queues = make_queues(&[1.0, 1.0]);
        queues[0].push(Activation::Trigger);
        let mut sel = QueueSelector::new(queues.clone(), vec![0], ConsumptionStrategy::Random, 7);
        assert!(!sel.all_exhausted());
        queues[0].close();
        queues[1].close();
        assert!(!sel.all_exhausted(), "queue 0 still holds an activation");
        let _ = sel.select_and_pop(4);
        assert!(sel.all_exhausted());
    }
}
