//! Consumption strategies.
//!
//! Two mechanisms control which activation queue a thread consumes from
//! (Section 3):
//!
//! * **Main vs secondary queues.** "For each operation, all activation
//!   queues are equally distributed among the associated threads and are
//!   marked as main queues. Therefore, each queue is the main queue of only
//!   one thread but each thread can have several main queues. A thread
//!   always tries to first consume the activations of the main queues. ...
//!   If all the main queues of a thread are empty, the thread would search
//!   in secondary queues." The runtime projects this split onto its shared
//!   pool: queue `q` is a main queue of worker `q % pool_threads` (see
//!   [`crate::runtime`]).
//! * **Consumption strategy.** `Random` (default): the thread randomly
//!   chooses one queue among the non-empty ones. `LPT` (Longest Processing
//!   Time first): the thread chooses the queue with the most expensive
//!   activations, based on static fragment-size estimates — the heuristic
//!   recommended for skewed triggered operations.

/// How a thread picks the next queue to consume from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsumptionStrategy {
    /// Pick a random non-empty queue (the paper's default).
    #[default]
    Random,
    /// Pick the non-empty queue with the largest estimated remaining cost
    /// ("Longest Processing Time first", Graham 1969).
    Lpt,
}

impl ConsumptionStrategy {
    /// Human-readable name for metrics and experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ConsumptionStrategy::Random => "random",
            ConsumptionStrategy::Lpt => "lpt",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names() {
        assert_eq!(ConsumptionStrategy::Random.name(), "random");
        assert_eq!(ConsumptionStrategy::Lpt.name(), "lpt");
        assert_eq!(ConsumptionStrategy::default(), ConsumptionStrategy::Random);
    }
}
