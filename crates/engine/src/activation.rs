//! Activations: the sequential units of work.
//!
//! "An activator denotes either a tuple (data activation) or a control
//! message (control activation). In either case, when an operator receives an
//! activation, the corresponding sequential operation is executed. Therefore,
//! each activation acts as a sequential unit of work." (Section 2)
//!
//! # Transport batches vs logical activations
//!
//! The paper's model is strictly per-tuple: one data activation per pipelined
//! tuple. Handling millions of per-tuple activations is also where the
//! paper's overhead story lives (queue interference, Section 3, Figure 4),
//! which DBS3 mitigates with the producer-side activation cache. This engine
//! takes the mitigation one step further: a data activation physically
//! carries a [`TupleBatch`] — every tuple the producer's internal cache had
//! buffered for the destination instance — so one queue push/pop moves up to
//! `CacheSize` tuples under a single lock acquisition.
//!
//! Batching is purely a *transport* optimisation. All observable semantics
//! stay per-tuple: metrics count **logical activations** (one per tuple of a
//! data batch, one per trigger, see [`Activation::logical_len`]), routing
//! hashes every tuple individually, and the simulator keeps modelling
//! per-tuple activations — which is why `tests/backend_equivalence.rs` holds
//! across cache sizes.

use dbs3_storage::Tuple;

/// An ordered batch of tuples moving through a pipeline as one transport
/// unit. The batch size is bounded by the producer's `CacheSize` (the flush
/// threshold of the internal activation cache).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TupleBatch {
    tuples: Vec<Tuple>,
}

impl TupleBatch {
    /// Creates a batch from tuples.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        TupleBatch { tuples }
    }

    /// Number of tuples in the batch — the batch's *logical* activation
    /// count in the paper's per-tuple model.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the batch holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples in arrival order.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Consumes the batch, returning the tuple vector.
    #[inline]
    pub fn into_vec(self) -> Vec<Tuple> {
        self.tuples
    }
}

impl From<Vec<Tuple>> for TupleBatch {
    fn from(tuples: Vec<Tuple>) -> Self {
        TupleBatch::new(tuples)
    }
}

impl From<Tuple> for TupleBatch {
    fn from(tuple: Tuple) -> Self {
        TupleBatch::new(vec![tuple])
    }
}

impl IntoIterator for TupleBatch {
    type Item = Tuple;
    type IntoIter = std::vec::IntoIter<Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.into_iter()
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

/// One transport activation.
#[derive(Debug, Clone, PartialEq)]
pub enum Activation {
    /// A control activation: start the operation instance on its associated
    /// fragment. A triggered queue receives exactly one of these (unless the
    /// fragment was split into [`Activation::Morsel`]s instead).
    Trigger,
    /// A control activation covering the fragment row range `start..end` —
    /// one morsel of a fragment split for intra-operator parallelism (the
    /// engine-side counterpart of the simulator's `triggered_granule`).
    ///
    /// Exactly one morsel per fragment is the *lead* morsel; only it carries
    /// the fragment's single logical trigger activation, so however finely a
    /// fragment is split, the per-operation logical activation count stays
    /// what the paper's model (and the simulator) report for one trigger.
    Morsel {
        /// First fragment row covered (inclusive).
        start: usize,
        /// One past the last fragment row covered.
        end: usize,
        /// Whether this morsel carries the fragment's logical trigger.
        lead: bool,
    },
    /// A data activation: a batch of tuples flowing through a pipeline
    /// (logically, one per-tuple activation per batched tuple).
    Data(TupleBatch),
}

impl Activation {
    /// Builds a data activation carrying a single tuple (the degenerate
    /// `CacheSize = 1` transport, and the convenient form for tests).
    pub fn single(tuple: Tuple) -> Self {
        Activation::Data(TupleBatch::from(tuple))
    }

    /// Whether this is a whole-fragment control activation.
    pub fn is_trigger(&self) -> bool {
        matches!(self, Activation::Trigger)
    }

    /// Whether this is a control activation (a trigger or a morsel).
    pub fn is_control(&self) -> bool {
        matches!(self, Activation::Trigger | Activation::Morsel { .. })
    }

    /// Number of *logical* (paper-model, per-tuple) activations this
    /// transport activation stands for: a trigger is one unit of work, a
    /// data batch is one unit per tuple, and of a split fragment's morsels
    /// only the lead one counts (the whole fragment is still one logical
    /// trigger). Execution metrics count logical activations so they are
    /// independent of both the transport batch granularity and the morsel
    /// granularity.
    #[inline]
    pub fn logical_len(&self) -> usize {
        match self {
            Activation::Trigger => 1,
            Activation::Morsel { lead, .. } => usize::from(*lead),
            Activation::Data(batch) => batch.len(),
        }
    }

    /// Queue-transport weight: what this activation occupies in a queue.
    /// Every control activation weighs one unit (a non-lead morsel is real
    /// schedulable work even though it is logically weightless), a data
    /// batch weighs one unit per tuple. Queue accounting — capacity,
    /// `len()`, the enqueue/dequeue totals and the runtime's pending-work
    /// counters — uses this weight, so morsels stay visible to the
    /// scheduler; metrics use [`Activation::logical_len`].
    #[inline]
    pub fn queue_weight(&self) -> usize {
        match self {
            Activation::Trigger | Activation::Morsel { .. } => 1,
            Activation::Data(batch) => batch.len(),
        }
    }

    /// The batch carried by a data activation.
    pub fn batch(&self) -> Option<&TupleBatch> {
        match self {
            Activation::Trigger | Activation::Morsel { .. } => None,
            Activation::Data(batch) => Some(batch),
        }
    }

    /// Consumes the activation, returning the batch of a data activation.
    pub fn into_batch(self) -> Option<TupleBatch> {
        match self {
            Activation::Trigger | Activation::Morsel { .. } => None,
            Activation::Data(batch) => Some(batch),
        }
    }
}

impl From<Tuple> for Activation {
    fn from(t: Tuple) -> Self {
        Activation::single(t)
    }
}

impl From<TupleBatch> for Activation {
    fn from(batch: TupleBatch) -> Self {
        Activation::Data(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbs3_storage::tuple::int_tuple;

    #[test]
    fn trigger_has_no_batch() {
        let a = Activation::Trigger;
        assert!(a.is_trigger());
        assert!(a.is_control());
        assert_eq!(a.logical_len(), 1);
        assert_eq!(a.queue_weight(), 1);
        assert!(a.batch().is_none());
        assert!(a.into_batch().is_none());
    }

    #[test]
    fn morsels_weigh_one_in_queues_but_only_the_lead_counts_logically() {
        let lead = Activation::Morsel {
            start: 0,
            end: 128,
            lead: true,
        };
        let tail = Activation::Morsel {
            start: 128,
            end: 200,
            lead: false,
        };
        for a in [&lead, &tail] {
            assert!(a.is_control());
            assert!(!a.is_trigger());
            assert_eq!(a.queue_weight(), 1);
            assert!(a.batch().is_none());
        }
        assert_eq!(lead.logical_len(), 1);
        assert_eq!(tail.logical_len(), 0);
    }

    #[test]
    fn data_carries_batch() {
        let batch = TupleBatch::new(vec![int_tuple(&[1, 2]), int_tuple(&[3, 4])]);
        let a = Activation::from(batch.clone());
        assert!(!a.is_trigger());
        assert_eq!(a.logical_len(), 2);
        assert_eq!(a.batch(), Some(&batch));
        assert_eq!(a.into_batch(), Some(batch));
    }

    #[test]
    fn single_tuple_is_a_one_element_batch() {
        let t = int_tuple(&[7]);
        let a = Activation::from(t.clone());
        assert_eq!(a.logical_len(), 1);
        assert_eq!(a.batch().unwrap().tuples(), &[t]);
    }

    #[test]
    fn batch_iteration_preserves_order() {
        let batch = TupleBatch::from(vec![int_tuple(&[1]), int_tuple(&[2]), int_tuple(&[3])]);
        let vals: Vec<i64> = batch.iter().map(|t| t.value(0).as_int().unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 3]);
        let owned: Vec<i64> = batch
            .into_iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(owned, vec![1, 2, 3]);
        assert!(TupleBatch::default().is_empty());
    }
}
