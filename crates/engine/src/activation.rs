//! Activations: the sequential units of work.
//!
//! "An activator denotes either a tuple (data activation) or a control
//! message (control activation). In either case, when an operator receives an
//! activation, the corresponding sequential operation is executed. Therefore,
//! each activation acts as a sequential unit of work." (Section 2)

use dbs3_storage::Tuple;

/// One activation.
#[derive(Debug, Clone, PartialEq)]
pub enum Activation {
    /// A control activation: start the operation instance on its associated
    /// fragment. A triggered queue receives exactly one of these.
    Trigger,
    /// A data activation: one tuple flowing through a pipeline.
    Data(Tuple),
}

impl Activation {
    /// Whether this is a control activation.
    pub fn is_trigger(&self) -> bool {
        matches!(self, Activation::Trigger)
    }

    /// The tuple carried by a data activation.
    pub fn tuple(&self) -> Option<&Tuple> {
        match self {
            Activation::Trigger => None,
            Activation::Data(t) => Some(t),
        }
    }

    /// Consumes the activation, returning the tuple of a data activation.
    pub fn into_tuple(self) -> Option<Tuple> {
        match self {
            Activation::Trigger => None,
            Activation::Data(t) => Some(t),
        }
    }
}

impl From<Tuple> for Activation {
    fn from(t: Tuple) -> Self {
        Activation::Data(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbs3_storage::tuple::int_tuple;

    #[test]
    fn trigger_has_no_tuple() {
        let a = Activation::Trigger;
        assert!(a.is_trigger());
        assert!(a.tuple().is_none());
        assert!(a.into_tuple().is_none());
    }

    #[test]
    fn data_carries_tuple() {
        let t = int_tuple(&[1, 2]);
        let a = Activation::from(t.clone());
        assert!(!a.is_trigger());
        assert_eq!(a.tuple(), Some(&t));
        assert_eq!(a.into_tuple(), Some(t));
    }
}
