//! Small concurrency primitives shared by the runtime's hot paths.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so two frequently-written values
/// never share a cache line (nor the adjacent line the spatial prefetcher
/// pairs it with on x86 — hence 128, not 64).
///
/// The runtime keeps one advisory `pending` counter and one `inflight`
/// guard per operation, stored in a `Vec` per query. Without padding,
/// neighbouring operations' counters land on the same line, so every
/// producer-side `fetch_add` invalidates the line a consumer is spinning
/// on — classic false sharing, measurable as soon as more than a couple of
/// workers poll. Padding trades a few hundred bytes per query for
/// contention-free counters.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the padding, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn padded_values_are_line_aligned_and_transparent() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 128);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 128);
        let counter = CachePadded::new(AtomicU64::new(41));
        counter.fetch_add(1, Ordering::Relaxed);
        assert_eq!(counter.load(Ordering::Relaxed), 42);
        assert_eq!(counter.into_inner().into_inner(), 42);
    }

    #[test]
    fn adjacent_padded_slots_do_not_share_lines() {
        let slots: Vec<CachePadded<AtomicU64>> = (0..4)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        for pair in slots.windows(2) {
            let a = &*pair[0] as *const AtomicU64 as usize;
            let b = &*pair[1] as *const AtomicU64 as usize;
            assert!(b.abs_diff(a) >= 128, "slots {a:#x}/{b:#x} share a line");
        }
    }
}
