//! Activation queues.
//!
//! "To manage activations, a FIFO queue is associated to each operation
//! instance." (Section 2). The queue mirrors the data structure of Figure 4:
//! a bounded buffer protected by a mutex, with a `NotEmpty` condition to wake
//! consumers and a `NotFull` condition to wake producers.
//!
//! Two kinds of queues exist:
//! * a **triggered** queue receives exactly one control activation;
//! * a **pipelined** queue receives data activations, each carrying a batch
//!   of pipelined tuples (see [`crate::activation`] for the transport-batch
//!   vs logical-activation distinction).
//!
//! All accounting — the capacity bound, `len`, and the enqueue/dequeue
//! totals — is in **queue weight** ([`Activation::queue_weight`]: one unit
//! per tuple, one per control activation — morsels included, even the
//! logically weightless non-lead ones), so the backpressure a query feels is
//! independent of the batch granularity while split fragments stay visible
//! to the scheduler morsel by morsel.
//! Pushes admit a batch whenever the buffered weight is *below* the
//! capacity, and the whole batch then lands (the overfill rule that keeps
//! oversized batches deadlock-free) — so `queue_capacity` bounds when
//! producers start blocking, while the instantaneous buffered length can
//! exceed it by up to one batch. For hash-redistributing hops batches are
//! at most `CacheSize` tuples; co-located hops ship an operator's whole
//! output vector as one batch, so their overshoot is bounded by the largest
//! single output instead. One push/pop of a batch costs one lock
//! acquisition and at most one condvar wakeup, which is where batching
//! removes the paper's queue interference.
//!
//! The queue also records whether it is *closed* (its producers have
//! terminated): a consumer popping from an empty closed queue knows the
//! operation instance has no further work.
//!
//! # Lock-free observation fast paths
//!
//! The worker scan of the shared-pool runtime asks every queue "anything for
//! me?" far more often than it moves data, and the termination check asks
//! `is_exhausted()` once per queue per finished batch. Taking the buffer
//! mutex just to *look* made those reads contend with the producers and
//! consumers actually moving tuples. The queue therefore mirrors its logical
//! length and closed flag in atomics, updated inside the critical section of
//! every mutation: `len()`, `is_empty()`, `is_closed()` and `is_exhausted()`
//! are single atomic loads, and an empty-queue [`ActivationQueue::try_pop_batch`]
//! returns without touching the mutex at all. The mutex remains the sole
//! guard of buffer *mutation*; the mirrors are observational.
//!
//! The mirrors are safe for termination because they are monotone where it
//! matters: once a queue is closed no push can succeed, so an observed
//! `closed && len == 0` can never be invalidated later — reading the closed
//! flag *before* the length makes `is_exhausted()` conservative under races
//! (a stale read reports "not yet exhausted", never the reverse).

use crate::activation::Activation;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Why [`ActivationQueue::try_push`] refused an activation. The activation is
/// handed back so the caller can retry (after making room) or drop it.
#[derive(Debug)]
pub enum TryPushError {
    /// The queue is at capacity. Blocking is the producer's decision: the
    /// shared-pool runtime reacts by *helping to drain* the full queue
    /// instead of waiting, which is what keeps one pool deadlock-free.
    Full(Activation),
    /// The queue is closed (its query was cancelled or its consumers are
    /// done); the activation has nowhere to go.
    Closed(Activation),
}

#[derive(Debug)]
struct QueueState {
    buffer: VecDeque<Activation>,
    /// Queue weight currently buffered (sum of `queue_weight`).
    weight: usize,
    closed: bool,
}

/// A bounded FIFO activation queue (one per operation instance).
#[derive(Debug)]
pub struct ActivationQueue {
    /// Instance this queue belongs to (fragment id).
    instance: usize,
    /// Maximum buffered queue weight before producers block. A single batch
    /// larger than the capacity is still accepted once the queue drains
    /// below the bound (the queue briefly overfills rather than
    /// deadlocking).
    capacity: usize,
    /// Static cost estimate of the work behind this queue, used by LPT.
    estimated_cost: f64,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    // ordering(atomic_len): SeqCst — `is_exhausted` reads closed before len
    // and needs a single total order against the closed flag; every write
    // happens inside the buffer mutex, the loads are lock-free observers.
    /// Atomic mirror of `QueueState::weight`, written inside the critical
    /// section of every mutation so observers never lock.
    atomic_len: AtomicUsize,
    // ordering(atomic_closed): SeqCst — monotone false → true; paired with
    // `atomic_len` in the exhaustion check (closed read first), so both
    // sides must agree on one total order.
    /// Atomic mirror of `QueueState::closed` (monotone false → true).
    atomic_closed: AtomicBool,
    // ordering(enqueued): SeqCst — metrics totals read against `dequeued`
    // by tests asserting enqueued == dequeued after a drain; SeqCst keeps
    // the pair coherent and the cost is invisible next to the mutex.
    /// Total queue weight ever enqueued (metrics).
    enqueued: AtomicU64,
    // ordering(dequeued): SeqCst — see `enqueued`; the two counters form
    // one invariant and share one ordering.
    /// Total queue weight ever dequeued (metrics).
    dequeued: AtomicU64,
}

impl ActivationQueue {
    /// Creates a queue for `instance` with the given capacity and static
    /// cost estimate.
    pub fn new(instance: usize, capacity: usize, estimated_cost: f64) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        ActivationQueue {
            instance,
            capacity,
            estimated_cost,
            state: Mutex::new(QueueState {
                buffer: VecDeque::with_capacity(capacity.min(1024)),
                weight: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            atomic_len: AtomicUsize::new(0),
            atomic_closed: AtomicBool::new(false),
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
        }
    }

    /// The instance (fragment) this queue belongs to.
    pub fn instance(&self) -> usize {
        self.instance
    }

    /// The static cost estimate used by the LPT strategy.
    pub fn estimated_cost(&self) -> f64 {
        self.estimated_cost
    }

    /// Queue capacity in queue weight (see [`Activation::queue_weight`]).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes one activation (a control activation or a whole tuple batch),
    /// blocking while the queue is at capacity.
    ///
    /// Pushing to a closed queue is a logic error in the engine (producers
    /// close queues only after they have all finished producing) and panics.
    /// Empty data batches are ignored: they carry no work.
    pub fn push(&self, activation: Activation) {
        let weight = activation.queue_weight();
        if weight == 0 {
            return;
        }
        let mut state = self.state.lock();
        while state.weight >= self.capacity {
            self.not_full.wait(&mut state);
        }
        assert!(!state.closed, "push into a closed activation queue");
        state.buffer.push_back(activation);
        state.weight += weight;
        self.atomic_len.store(state.weight, Ordering::SeqCst);
        self.enqueued.fetch_add(weight as u64, Ordering::SeqCst);
        drop(state);
        self.not_empty.notify_one();
    }

    /// Attempts to push one activation without ever blocking.
    ///
    /// Mirrors [`ActivationQueue::push`]'s overfill rule: the activation is
    /// accepted whenever the buffered weight is below the capacity, even if
    /// the batch itself overshoots the bound. On refusal the activation is
    /// handed back in the [`TryPushError`] so no tuple is ever lost. Empty
    /// data batches are accepted and dropped (no work).
    pub fn try_push(&self, activation: Activation) -> std::result::Result<(), TryPushError> {
        match crate::faults::hit(crate::faults::points::QUEUE_PUSH) {
            Some(crate::faults::FaultAction::Delay(d)) => std::thread::sleep(d),
            // allow-panic: `error`/`drop` escalate to a panic on purpose —
            // silently losing an activation would corrupt results, while the
            // panic is contained by the worker's catch_unwind into a typed
            // `WorkerPanicked`.
            Some(_) => panic!("injected fault at {}", crate::faults::points::QUEUE_PUSH),
            None => {}
        }
        let weight = activation.queue_weight();
        if weight == 0 {
            return Ok(());
        }
        let mut state = self.state.lock();
        if state.closed {
            return Err(TryPushError::Closed(activation));
        }
        if state.weight >= self.capacity {
            return Err(TryPushError::Full(activation));
        }
        state.buffer.push_back(activation);
        state.weight += weight;
        self.atomic_len.store(state.weight, Ordering::SeqCst);
        self.enqueued.fetch_add(weight as u64, Ordering::SeqCst);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pushes several activations under one lock acquisition, blocking (and
    /// splitting across acquisitions) whenever the capacity bound is hit.
    pub fn push_batch(&self, batch: Vec<Activation>) {
        let mut remaining = batch
            .into_iter()
            .filter(|a| a.queue_weight() > 0)
            .peekable();
        while remaining.peek().is_some() {
            let mut state = self.state.lock();
            while state.weight >= self.capacity {
                self.not_full.wait(&mut state);
            }
            assert!(!state.closed, "push into a closed activation queue");
            let mut pushed = 0u64;
            // Always accept at least one activation per acquisition, then
            // keep going while the capacity allows.
            while let Some(a) = remaining.next_if(|_| pushed == 0 || state.weight < self.capacity) {
                let weight = a.queue_weight();
                state.buffer.push_back(a);
                state.weight += weight;
                pushed += weight as u64;
            }
            self.atomic_len.store(state.weight, Ordering::SeqCst);
            self.enqueued.fetch_add(pushed, Ordering::SeqCst);
            drop(state);
            self.not_empty.notify_all();
        }
    }

    /// Attempts to pop activations worth up to `max_weight` queue weight
    /// without blocking. At least one activation is returned when the queue
    /// is non-empty, even if its batch alone exceeds the budget; popping
    /// whole activations keeps batches intact.
    ///
    /// A popped *control* activation (trigger or morsel) ends the pop: a
    /// control activation stands for a fragment-sized (or morsel-sized)
    /// scan, so claiming several under one pop would serialise work the
    /// morsel split exists to spread across workers.
    ///
    /// Returns an empty vector when the queue is currently empty (whether or
    /// not it is closed); use [`ActivationQueue::is_exhausted`] to tell the
    /// difference.
    pub fn try_pop_batch(&self, max_weight: usize) -> Vec<Activation> {
        // Lock-free fast path: a queue that currently looks empty yields
        // nothing — identical to arriving at the mutex a moment earlier.
        // This keeps the runtime's speculative probes off the mutex
        // entirely.
        if self.atomic_len.load(Ordering::SeqCst) == 0 {
            return Vec::new();
        }
        let mut state = self.state.lock();
        let mut out = Vec::new();
        let mut popped = 0usize;
        while let Some(front) = state.buffer.front() {
            let weight = front.queue_weight();
            if !out.is_empty() && popped + weight > max_weight {
                break;
            }
            // allow-panic: the `while let Some(front)` above proved
            // non-emptiness under the same lock.
            let a = state.buffer.pop_front().expect("front exists");
            state.weight -= weight;
            popped += weight;
            let control = a.is_control();
            out.push(a);
            if control || popped >= max_weight {
                break;
            }
        }
        self.atomic_len.store(state.weight, Ordering::SeqCst);
        drop(state);
        if popped > 0 {
            self.dequeued.fetch_add(popped as u64, Ordering::SeqCst);
            self.not_full.notify_all();
        }
        out
    }

    /// Pops one activation, blocking until one is available or the queue is
    /// closed and drained (then returns `None`).
    pub fn pop_blocking(&self) -> Option<Activation> {
        let mut state = self.state.lock();
        loop {
            if let Some(a) = state.buffer.pop_front() {
                let weight = a.queue_weight();
                state.weight -= weight;
                self.atomic_len.store(state.weight, Ordering::SeqCst);
                self.dequeued.fetch_add(weight as u64, Ordering::SeqCst);
                drop(state);
                // One popped batch can free many logical slots, so every
                // blocked producer gets a chance to re-check the capacity.
                self.not_full.notify_all();
                return Some(a);
            }
            if state.closed {
                return None;
            }
            self.not_empty.wait(&mut state);
        }
    }

    /// Marks the queue closed: no further activations will be pushed. Wakes
    /// all waiting consumers.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        self.atomic_closed.store(true, Ordering::SeqCst);
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether the queue is closed (producers finished). Lock-free.
    pub fn is_closed(&self) -> bool {
        self.atomic_closed.load(Ordering::SeqCst)
    }

    /// Whether the queue currently holds no activations. Lock-free.
    pub fn is_empty(&self) -> bool {
        self.atomic_len.load(Ordering::SeqCst) == 0
    }

    /// Buffered queue weight (tuples + control activations). Lock-free.
    pub fn len(&self) -> usize {
        self.atomic_len.load(Ordering::SeqCst)
    }

    /// Whether the queue is closed *and* drained: no work will ever come out
    /// of it again. Lock-free.
    ///
    /// The closed flag is read *before* the length: a push can never succeed
    /// after the queue closed, so "closed, then empty" can only be observed
    /// when it is permanently true — the read order makes races err on the
    /// conservative "not yet exhausted" side.
    pub fn is_exhausted(&self) -> bool {
        self.atomic_closed.load(Ordering::SeqCst) && self.atomic_len.load(Ordering::SeqCst) == 0
    }

    /// Total queue weight enqueued over the queue's lifetime.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::SeqCst)
    }

    /// Total queue weight dequeued over the queue's lifetime.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::TupleBatch;
    use dbs3_storage::tuple::int_tuple;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = ActivationQueue::new(0, 16, 0.0);
        q.push(Activation::single(int_tuple(&[1])));
        q.push(Activation::single(int_tuple(&[2])));
        q.push(Activation::single(int_tuple(&[3])));
        let batch = q.try_pop_batch(10);
        let vals: Vec<i64> = batch
            .iter()
            .flat_map(|a| a.batch().unwrap().iter())
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 3]);
        assert_eq!(q.total_enqueued(), 3);
        assert_eq!(q.total_dequeued(), 3);
    }

    #[test]
    fn try_pop_respects_logical_budget() {
        let q = ActivationQueue::new(0, 16, 0.0);
        for i in 0..10 {
            q.push(Activation::single(int_tuple(&[i])));
        }
        assert_eq!(q.try_pop_batch(3).len(), 3);
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn batched_activations_count_logically() {
        let q = ActivationQueue::new(0, 64, 0.0);
        q.push(Activation::Data(TupleBatch::from(vec![
            int_tuple(&[1]),
            int_tuple(&[2]),
            int_tuple(&[3]),
        ])));
        q.push(Activation::single(int_tuple(&[4])));
        assert_eq!(q.len(), 4, "logical length counts batched tuples");
        assert_eq!(q.total_enqueued(), 4);
        // A budget of 1 still pops the whole first batch (batches stay
        // intact), but stops before the second activation.
        let popped = q.try_pop_batch(1);
        assert_eq!(popped.len(), 1);
        assert_eq!(popped[0].logical_len(), 3);
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_dequeued(), 3);
    }

    #[test]
    fn control_activations_end_a_pop() {
        let q = ActivationQueue::new(0, 64, 0.0);
        q.push(Activation::Trigger);
        q.push(Activation::Morsel {
            start: 0,
            end: 10,
            lead: false,
        });
        q.push(Activation::Data(TupleBatch::from(vec![
            int_tuple(&[1]),
            int_tuple(&[2]),
        ])));
        q.push(Activation::Morsel {
            start: 10,
            end: 20,
            lead: true,
        });
        assert_eq!(q.len(), 5, "every control activation weighs one unit");
        // A huge budget still claims control activations one at a time, so
        // sibling workers can pick up the remaining morsels concurrently.
        let popped = q.try_pop_batch(usize::MAX);
        assert_eq!(popped.len(), 1);
        assert!(popped[0].is_trigger());
        let popped = q.try_pop_batch(usize::MAX);
        assert_eq!(popped.len(), 1);
        assert!(popped[0].is_control());
        // Data batches still coalesce, stopping at the next control.
        let popped = q.try_pop_batch(usize::MAX);
        assert_eq!(popped.len(), 2);
        assert!(!popped[0].is_control());
        assert!(popped[1].is_control());
        assert_eq!(q.total_dequeued(), 5);
    }

    #[test]
    fn empty_data_batches_are_dropped() {
        let q = ActivationQueue::new(0, 4, 0.0);
        q.push(Activation::Data(TupleBatch::default()));
        q.push_batch(vec![Activation::Data(TupleBatch::default())]);
        assert!(q.is_empty());
        assert_eq!(q.total_enqueued(), 0);
    }

    #[test]
    fn close_unblocks_consumer() {
        let q = Arc::new(ActivationQueue::new(0, 4, 0.0));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop_blocking());
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
        assert!(q.is_exhausted());
    }

    #[test]
    fn bounded_push_blocks_until_pop() {
        let q = Arc::new(ActivationQueue::new(0, 2, 0.0));
        q.push(Activation::Trigger);
        q.push(Activation::Trigger);
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            // This push must block until the consumer below makes room.
            q2.push(Activation::Trigger);
        });
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 2, "producer should still be blocked");
        assert_eq!(q.try_pop_batch(1).len(), 1);
        h.join().unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn oversized_batch_is_accepted_once_below_capacity() {
        let q = Arc::new(ActivationQueue::new(0, 4, 0.0));
        for _ in 0..4 {
            q.push(Activation::Trigger);
        }
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            // 10 tuples > capacity 4: must wait until the queue drops below
            // capacity, then overfill rather than deadlock.
            q2.push(Activation::Data(TupleBatch::from(
                (0..10).map(|i| int_tuple(&[i])).collect::<Vec<_>>(),
            )));
        });
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 4, "oversized batch still blocked at capacity");
        assert_eq!(q.try_pop_batch(1).len(), 1);
        h.join().unwrap();
        assert_eq!(q.len(), 13, "three triggers plus the whole batch");
    }

    #[test]
    fn push_batch_larger_than_capacity() {
        let q = Arc::new(ActivationQueue::new(0, 8, 0.0));
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || {
            let batch: Vec<Activation> = (0..100)
                .map(|i| Activation::single(int_tuple(&[i])))
                .collect();
            q2.push_batch(batch);
        });
        let mut got = 0usize;
        while got < 100 {
            let batch = q.try_pop_batch(16);
            if batch.is_empty() {
                thread::yield_now();
            } else {
                got += batch.iter().map(Activation::logical_len).sum::<usize>();
            }
        }
        producer.join().unwrap();
        assert_eq!(q.total_enqueued(), 100);
        assert_eq!(q.total_dequeued(), 100);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(ActivationQueue::new(0, 32, 0.0));
        // A lock-free observer sampling the atomic mirrors concurrently with
        // the data movement: totals must be monotonically non-decreasing,
        // dequeues can never outrun enqueues, and the buffered length always
        // stays within what the totals allow.
        let stop_sampling = Arc::new(AtomicBool::new(false));
        let sampler = {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop_sampling);
            thread::spawn(move || {
                let (mut last_enq, mut last_deq) = (0u64, 0u64);
                let mut samples = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Read dequeued BEFORE enqueued: each total is monotone,
                    // so sampling the (earlier) dequeue total against a
                    // (later, hence >=) enqueue total makes `deq <= enq`
                    // sound without an atomic snapshot of the pair. The
                    // totals are SeqCst, so the causal order (a tuple's
                    // enqueue-increment precedes its dequeue-increment) is
                    // part of the single total order even for this third
                    // thread — Relaxed would only be safe on x86-TSO.
                    let deq = q.total_dequeued();
                    let enq = q.total_enqueued();
                    assert!(enq >= last_enq, "enqueued total went backwards");
                    assert!(deq >= last_deq, "dequeued total went backwards");
                    assert!(
                        deq <= enq,
                        "dequeued {deq} tuples but only {enq} ever enqueued"
                    );
                    assert!(
                        q.len() <= q.capacity() + 2,
                        "len exceeds capacity + overfill"
                    );
                    (last_enq, last_deq) = (enq, deq);
                    samples += 1;
                }
                samples
            })
        };
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..250i64 {
                        // Alternate singleton and two-tuple batches.
                        q.push(Activation::Data(TupleBatch::from(vec![
                            int_tuple(&[p * 1000 + 2 * i]),
                            int_tuple(&[p * 1000 + 2 * i + 1]),
                        ])));
                    }
                })
            })
            .collect();
        let consumed = Arc::new(AtomicU64::new(0));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                thread::spawn(move || {
                    while let Some(a) = q.pop_blocking() {
                        consumed.fetch_add(a.logical_len() as u64, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        stop_sampling.store(true, Ordering::Relaxed);
        assert!(
            sampler.join().unwrap() > 0,
            "sampler never observed the queue"
        );
        assert_eq!(consumed.load(Ordering::Relaxed), 2000);
        assert_eq!(q.total_enqueued(), 2000);
        assert_eq!(q.total_dequeued(), 2000);
        assert!(q.is_exhausted());
    }

    #[test]
    fn try_push_full_and_closed_hand_the_activation_back() {
        let q = ActivationQueue::new(0, 2, 0.0);
        // Below capacity: accepted, even when the batch overshoots the bound.
        assert!(q
            .try_push(Activation::Data(TupleBatch::from(vec![
                int_tuple(&[1]),
                int_tuple(&[2]),
                int_tuple(&[3]),
            ])))
            .is_ok());
        assert_eq!(q.len(), 3);
        // At (over) capacity: refused with the activation handed back.
        match q.try_push(Activation::single(int_tuple(&[4]))) {
            Err(TryPushError::Full(a)) => assert_eq!(a.logical_len(), 1),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 3, "a refused push must not enqueue anything");
        // Empty data batches are silently dropped.
        assert!(q.try_push(Activation::Data(TupleBatch::default())).is_ok());
        q.close();
        let _ = q.try_pop_batch(usize::MAX);
        match q.try_push(Activation::single(int_tuple(&[5]))) {
            Err(TryPushError::Closed(a)) => assert_eq!(a.logical_len(), 1),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ActivationQueue::new(0, 0, 0.0);
    }

    #[test]
    fn accessors() {
        let q = ActivationQueue::new(7, 16, 42.0);
        assert_eq!(q.instance(), 7);
        assert_eq!(q.capacity(), 16);
        assert!((q.estimated_cost() - 42.0).abs() < 1e-12);
        assert!(q.is_empty());
        assert!(!q.is_closed());
    }
}
