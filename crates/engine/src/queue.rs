//! Activation queues.
//!
//! "To manage activations, a FIFO queue is associated to each operation
//! instance." (Section 2). The queue mirrors the data structure of Figure 4:
//! a bounded buffer protected by a mutex, with a `NotEmpty` condition to wake
//! consumers and a `NotFull` condition to wake producers.
//!
//! Two kinds of queues exist:
//! * a **triggered** queue receives exactly one control activation;
//! * a **pipelined** queue receives one data activation per pipelined tuple.
//!
//! The queue also records whether it is *closed* (its producers have
//! terminated): a consumer popping from an empty closed queue knows the
//! operation instance has no further work.

use crate::activation::Activation;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug)]
struct QueueState {
    buffer: VecDeque<Activation>,
    closed: bool,
}

/// A bounded FIFO activation queue (one per operation instance).
#[derive(Debug)]
pub struct ActivationQueue {
    /// Instance this queue belongs to (fragment id).
    instance: usize,
    /// Maximum number of buffered activations before producers block.
    capacity: usize,
    /// Static cost estimate of the work behind this queue, used by LPT.
    estimated_cost: f64,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Total activations ever enqueued (metrics).
    enqueued: AtomicU64,
    /// Total activations ever dequeued (metrics).
    dequeued: AtomicU64,
}

impl ActivationQueue {
    /// Creates a queue for `instance` with the given capacity and static
    /// cost estimate.
    pub fn new(instance: usize, capacity: usize, estimated_cost: f64) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        ActivationQueue {
            instance,
            capacity,
            estimated_cost,
            state: Mutex::new(QueueState {
                buffer: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
        }
    }

    /// The instance (fragment) this queue belongs to.
    pub fn instance(&self) -> usize {
        self.instance
    }

    /// The static cost estimate used by the LPT strategy.
    pub fn estimated_cost(&self) -> f64 {
        self.estimated_cost
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes one activation, blocking while the queue is full.
    ///
    /// Pushing to a closed queue is a logic error in the engine (producers
    /// close queues only after they have all finished producing) and panics.
    pub fn push(&self, activation: Activation) {
        let mut state = self.state.lock();
        while state.buffer.len() >= self.capacity {
            self.not_full.wait(&mut state);
        }
        assert!(!state.closed, "push into a closed activation queue");
        state.buffer.push_back(activation);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.not_empty.notify_one();
    }

    /// Pushes a batch of activations (the producer-side internal cache
    /// flushes whole batches to amortise locking).
    pub fn push_batch(&self, batch: Vec<Activation>) {
        if batch.is_empty() {
            return;
        }
        let mut remaining = batch.into_iter();
        loop {
            let mut state = self.state.lock();
            while state.buffer.len() >= self.capacity {
                self.not_full.wait(&mut state);
            }
            assert!(!state.closed, "push into a closed activation queue");
            let room = self.capacity - state.buffer.len();
            let mut pushed = 0usize;
            for a in remaining.by_ref().take(room) {
                state.buffer.push_back(a);
                pushed += 1;
            }
            self.enqueued.fetch_add(pushed as u64, Ordering::Relaxed);
            let more = remaining.len() > 0;
            drop(state);
            self.not_empty.notify_all();
            if !more {
                break;
            }
        }
    }

    /// Attempts to pop up to `max` activations without blocking.
    ///
    /// Returns an empty vector when the queue is currently empty (whether or
    /// not it is closed); use [`ActivationQueue::is_exhausted`] to tell the
    /// difference.
    pub fn try_pop_batch(&self, max: usize) -> Vec<Activation> {
        let mut state = self.state.lock();
        let n = state.buffer.len().min(max);
        let out: Vec<Activation> = state.buffer.drain(..n).collect();
        drop(state);
        if !out.is_empty() {
            self.dequeued.fetch_add(out.len() as u64, Ordering::Relaxed);
            self.not_full.notify_all();
        }
        out
    }

    /// Pops one activation, blocking until one is available or the queue is
    /// closed and drained (then returns `None`).
    pub fn pop_blocking(&self) -> Option<Activation> {
        let mut state = self.state.lock();
        loop {
            if let Some(a) = state.buffer.pop_front() {
                self.dequeued.fetch_add(1, Ordering::Relaxed);
                drop(state);
                self.not_full.notify_one();
                return Some(a);
            }
            if state.closed {
                return None;
            }
            self.not_empty.wait(&mut state);
        }
    }

    /// Marks the queue closed: no further activations will be pushed. Wakes
    /// all waiting consumers.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether the queue is closed (producers finished).
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Whether the queue currently holds no activations.
    pub fn is_empty(&self) -> bool {
        self.state.lock().buffer.is_empty()
    }

    /// Number of buffered activations.
    pub fn len(&self) -> usize {
        self.state.lock().buffer.len()
    }

    /// Whether the queue is closed *and* drained: no work will ever come out
    /// of it again.
    pub fn is_exhausted(&self) -> bool {
        let state = self.state.lock();
        state.closed && state.buffer.is_empty()
    }

    /// Total activations enqueued over the queue's lifetime.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Total activations dequeued over the queue's lifetime.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbs3_storage::tuple::int_tuple;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = ActivationQueue::new(0, 16, 0.0);
        q.push(Activation::Data(int_tuple(&[1])));
        q.push(Activation::Data(int_tuple(&[2])));
        q.push(Activation::Data(int_tuple(&[3])));
        let batch = q.try_pop_batch(10);
        let vals: Vec<i64> = batch
            .iter()
            .map(|a| a.tuple().unwrap().value(0).as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 3]);
        assert_eq!(q.total_enqueued(), 3);
        assert_eq!(q.total_dequeued(), 3);
    }

    #[test]
    fn try_pop_respects_max() {
        let q = ActivationQueue::new(0, 16, 0.0);
        for i in 0..10 {
            q.push(Activation::Data(int_tuple(&[i])));
        }
        assert_eq!(q.try_pop_batch(3).len(), 3);
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn close_unblocks_consumer() {
        let q = Arc::new(ActivationQueue::new(0, 4, 0.0));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop_blocking());
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
        assert!(q.is_exhausted());
    }

    #[test]
    fn bounded_push_blocks_until_pop() {
        let q = Arc::new(ActivationQueue::new(0, 2, 0.0));
        q.push(Activation::Trigger);
        q.push(Activation::Trigger);
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            // This push must block until the consumer below makes room.
            q2.push(Activation::Trigger);
        });
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 2, "producer should still be blocked");
        assert_eq!(q.try_pop_batch(1).len(), 1);
        h.join().unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn push_batch_larger_than_capacity() {
        let q = Arc::new(ActivationQueue::new(0, 8, 0.0));
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || {
            let batch: Vec<Activation> = (0..100)
                .map(|i| Activation::Data(int_tuple(&[i])))
                .collect();
            q2.push_batch(batch);
        });
        let mut got = 0usize;
        while got < 100 {
            let batch = q.try_pop_batch(16);
            if batch.is_empty() {
                thread::yield_now();
            } else {
                got += batch.len();
            }
        }
        producer.join().unwrap();
        assert_eq!(q.total_enqueued(), 100);
        assert_eq!(q.total_dequeued(), 100);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(ActivationQueue::new(0, 32, 0.0));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..500i64 {
                        q.push(Activation::Data(int_tuple(&[p * 1000 + i])));
                    }
                })
            })
            .collect();
        let consumed = Arc::new(AtomicU64::new(0));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                thread::spawn(move || {
                    while let Some(_a) = q.pop_blocking() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), 2000);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ActivationQueue::new(0, 0, 0.0);
    }

    #[test]
    fn accessors() {
        let q = ActivationQueue::new(7, 16, 42.0);
        assert_eq!(q.instance(), 7);
        assert_eq!(q.capacity(), 16);
        assert!((q.estimated_cost() - 42.0).abs() < 1e-12);
        assert!(q.is_empty());
        assert!(!q.is_closed());
    }
}
