//! Producer-side internal activation cache.
//!
//! "There is an internal cache mechanism for activations in order to reduce
//! interference between activation producers and consumers, and to increase
//! locality of access" (Section 3, Figure 4). Instead of taking the consumer
//! queue's lock for every produced tuple, a producing thread buffers outgoing
//! tuples per destination queue and flushes each buffer as **one** batch
//! activation ([`crate::activation::TupleBatch`]): the paper's `CacheSize`
//! is therefore both the flush threshold and the transport batch
//! granularity. One flush is one lock acquisition and one condvar wakeup,
//! regardless of how many tuples it moves.

use crate::activation::{Activation, TupleBatch};
use crate::queue::ActivationQueue;
use dbs3_storage::Tuple;
use std::sync::Arc;

/// A per-thread cache of outgoing tuples, one buffer per destination queue
/// of the consumer operation.
#[derive(Debug)]
pub struct OutputCache {
    /// Destination queues (the consumer operation's queues, indexed by
    /// instance).
    destinations: Vec<Arc<ActivationQueue>>,
    /// Buffered tuples per destination.
    buffers: Vec<Vec<Tuple>>,
    /// Flush threshold in tuples (the paper's `CacheSize`).
    cache_size: usize,
    /// Number of flushes performed (metrics: how much lock traffic the cache
    /// saved).
    flushes: u64,
    /// Number of tuples that went through the cache.
    produced: u64,
}

impl OutputCache {
    /// Creates a cache in front of the given destination queues.
    pub fn new(destinations: Vec<Arc<ActivationQueue>>, cache_size: usize) -> Self {
        let cache_size = cache_size.max(1);
        let buffers = destinations
            .iter()
            .map(|_| Vec::with_capacity(cache_size.min(1024)))
            .collect();
        OutputCache {
            destinations,
            buffers,
            cache_size,
            flushes: 0,
            produced: 0,
        }
    }

    /// Number of destination queues.
    pub fn destination_count(&self) -> usize {
        self.destinations.len()
    }

    /// Buffers one tuple for `destination`, flushing that buffer as a single
    /// batch activation if it reached the cache size.
    #[inline]
    pub fn produce(&mut self, destination: usize, tuple: Tuple) {
        self.produced += 1;
        self.buffers[destination].push(tuple);
        if self.buffers[destination].len() >= self.cache_size {
            self.flush_one(destination);
        }
    }

    /// Buffers a whole output batch for `destination` in one pass (the
    /// router's no-rehash path when producer and consumer instances are
    /// co-located).
    ///
    /// Every emitted batch still holds at most `CacheSize` tuples — the
    /// batch-granularity contract `CacheSize` promises (and the queue's
    /// capacity accounting relies on) must hold on this path too. All full
    /// batches are handed to the queue in a single `push_batch` call, so a
    /// large output still costs one lock acquisition; the sub-`CacheSize`
    /// remainder stays buffered.
    pub fn produce_all(&mut self, destination: usize, tuples: Vec<Tuple>) {
        self.produced += tuples.len() as u64;
        if self.buffers[destination].is_empty() && tuples.len() == self.cache_size {
            // Exactly one full batch: ship the producer's output vector
            // as-is, without copying it through the buffer.
            self.flushes += 1;
            self.destinations[destination].push(Activation::Data(TupleBatch::new(tuples)));
            return;
        }
        let mut iter = tuples.into_iter();
        // Top up the partially filled buffer first.
        let room = self.cache_size - self.buffers[destination].len();
        self.buffers[destination].extend(iter.by_ref().take(room));
        if self.buffers[destination].len() < self.cache_size {
            return; // everything fit below the flush threshold
        }
        let first = std::mem::replace(
            &mut self.buffers[destination],
            Vec::with_capacity(self.cache_size.min(1024)),
        );
        let mut full_batches = vec![Activation::Data(TupleBatch::new(first))];
        loop {
            let chunk: Vec<Tuple> = iter.by_ref().take(self.cache_size).collect();
            if chunk.len() == self.cache_size {
                full_batches.push(Activation::Data(TupleBatch::new(chunk)));
            } else {
                self.buffers[destination] = chunk; // remainder stays buffered
                break;
            }
        }
        self.flushes += full_batches.len() as u64;
        self.destinations[destination].push_batch(full_batches);
    }

    /// Flushes a single destination buffer as one batch activation.
    fn flush_one(&mut self, destination: usize) {
        if self.buffers[destination].is_empty() {
            return;
        }
        let batch = std::mem::replace(
            &mut self.buffers[destination],
            Vec::with_capacity(self.cache_size.min(1024)),
        );
        self.destinations[destination].push(Activation::Data(TupleBatch::new(batch)));
        self.flushes += 1;
    }

    /// Flushes every non-empty buffer (called when a thread finishes
    /// processing, so no tuple is ever stranded in the cache).
    pub fn flush_all(&mut self) {
        for d in 0..self.buffers.len() {
            self.flush_one(d);
        }
    }

    /// Number of batch flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Number of tuples produced through this cache.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Number of tuples currently buffered (not yet visible to consumers).
    pub fn buffered(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbs3_storage::tuple::int_tuple;

    fn queues(n: usize, capacity: usize) -> Vec<Arc<ActivationQueue>> {
        (0..n)
            .map(|i| Arc::new(ActivationQueue::new(i, capacity, 0.0)))
            .collect()
    }

    #[test]
    fn flushes_one_batch_when_cache_size_reached() {
        let qs = queues(2, 64);
        let mut cache = OutputCache::new(qs.clone(), 4);
        for i in 0..3 {
            cache.produce(0, int_tuple(&[i]));
        }
        assert_eq!(qs[0].len(), 0, "below threshold: nothing flushed yet");
        assert_eq!(cache.buffered(), 3);
        cache.produce(0, int_tuple(&[3]));
        assert_eq!(qs[0].len(), 4, "threshold reached: batch flushed");
        assert_eq!(cache.flushes(), 1);
        // The four tuples left as ONE transport activation.
        let popped = qs[0].try_pop_batch(64);
        assert_eq!(popped.len(), 1);
        assert_eq!(popped[0].logical_len(), 4);
    }

    #[test]
    fn flush_all_empties_every_buffer() {
        let qs = queues(3, 64);
        let mut cache = OutputCache::new(qs.clone(), 100);
        cache.produce(0, int_tuple(&[0]));
        cache.produce(1, int_tuple(&[1]));
        cache.produce(2, int_tuple(&[2]));
        cache.flush_all();
        assert_eq!(cache.buffered(), 0);
        assert!(qs.iter().all(|q| q.len() == 1));
        assert_eq!(cache.produced(), 3);
    }

    #[test]
    fn flush_all_on_empty_cache_is_a_noop() {
        let qs = queues(2, 8);
        let mut cache = OutputCache::new(qs, 4);
        cache.flush_all();
        assert_eq!(cache.flushes(), 0);
    }

    #[test]
    fn cache_size_one_degenerates_to_per_tuple_transport() {
        let qs = queues(1, 8);
        let mut cache = OutputCache::new(qs.clone(), 1);
        cache.produce(0, int_tuple(&[1]));
        cache.produce(0, int_tuple(&[2]));
        assert_eq!(qs[0].len(), 2);
        assert_eq!(cache.flushes(), 2);
        assert_eq!(cache.destination_count(), 1);
        let popped = qs[0].try_pop_batch(64);
        assert_eq!(popped.len(), 2, "two singleton activations");
        assert!(popped.iter().all(|a| a.logical_len() == 1));
    }

    #[test]
    fn produce_all_respects_the_cache_size_granularity() {
        let qs = queues(2, 1024);
        let mut cache = OutputCache::new(qs.clone(), 8);
        // A large output is cut into full cache_size batches; the remainder
        // stays buffered. No transport batch may exceed cache_size.
        cache.produce_all(0, (0..20).map(|i| int_tuple(&[i])).collect());
        assert_eq!(qs[0].len(), 16, "two full batches of 8 flushed");
        assert_eq!(cache.flushes(), 2);
        for a in qs[0].try_pop_batch(usize::MAX) {
            assert_eq!(a.logical_len(), 8);
        }
        // Partial buffer: topped up first, then chunked the same way.
        cache.produce(1, int_tuple(&[100]));
        cache.produce_all(1, (0..18).map(|i| int_tuple(&[i])).collect());
        assert_eq!(qs[1].len(), 16, "two full batches of 8 flushed");
        assert_eq!(cache.buffered(), 4 + 3);
        assert_eq!(cache.produced(), 39);
        cache.flush_all();
        assert_eq!(qs[1].len(), 19);
    }

    #[test]
    fn produce_all_exact_fit_ships_the_vector_as_one_batch() {
        let qs = queues(1, 64);
        let mut cache = OutputCache::new(qs.clone(), 8);
        cache.produce_all(0, (0..8).map(|i| int_tuple(&[i])).collect());
        assert_eq!(cache.flushes(), 1);
        assert_eq!(cache.buffered(), 0);
        let popped = qs[0].try_pop_batch(usize::MAX);
        assert_eq!(popped.len(), 1);
        assert_eq!(popped[0].logical_len(), 8);
    }

    #[test]
    fn produce_all_below_threshold_only_buffers() {
        let qs = queues(1, 64);
        let mut cache = OutputCache::new(qs.clone(), 8);
        cache.produce_all(0, (0..5).map(|i| int_tuple(&[i])).collect());
        assert_eq!(cache.flushes(), 0);
        assert_eq!(cache.buffered(), 5);
        assert!(qs[0].is_empty());
    }
}
