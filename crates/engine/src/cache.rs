//! Process-wide query-setup caches: prepared plans and shared build-side
//! hash indexes.
//!
//! Under real traffic the same plan shapes repeat and concurrent queries
//! hash-join the *same* relations, yet historically every submission
//! re-expanded the plan, re-ran the scheduler and rebuilt every build-side
//! [`HashIndex`] from scratch. This module makes that setup ~free on repeat:
//!
//! * the **plan cache** maps a content hash of (plan structure, scheduler
//!   options, cost parameters) to the expanded [`ExtendedPlan`] and built
//!   [`ExecutionSchedule`] (a [`PreparedPlan`]);
//! * the **index cache** maps (relation, key column, fragment, relation
//!   *generation*) to an `Arc<HashIndex>`, so concurrent and repeated
//!   queries over one relation share a single build — the first requester
//!   builds, later requesters either clone the `Arc` or *wait on the build
//!   in flight* instead of duplicating it.
//!
//! **Invalidation is by generation, not by flushing**: every [`Catalog`]
//! mutation stamps the touched relation with a process-wide unique
//! generation, entries record the generations they were derived from, and a
//! lookup that finds a stale entry evicts it and reports a miss. Stale
//! entries are therefore unreachable the instant the catalog changes.
//! Capacity is bounded with LRU eviction on top, and per-cache
//! hit/miss/evict counters are surfaced through
//! [`ExecutionMetrics`](crate::ExecutionMetrics) and the serve stats path.
//!
//! Both caches are process-wide (like [`Runtime::shared`](crate::Runtime)):
//! generations are unique across *all* catalogs, so entries from unrelated
//! sessions can never be confused, and cross-connection reuse in the serve
//! layer falls out for free.
//!
//! Fault points [`faults::points::CACHE_LOOKUP`] and
//! [`faults::points::CACHE_BUILD`] cover the new path: a lookup fault
//! bypasses the cache (an uncached build is always correct — faults may
//! fail or slow queries, never falsify them), a build fault escalates to a
//! panic contained by the worker's `catch_unwind`.

use crate::faults::{self, points, FaultAction};
use crate::schedule::{ExecutionSchedule, Scheduler, SchedulerOptions};
use crate::Result;
use dbs3_lera::{ContentHasher, CostParameters, ExtendedPlan, OperatorKind, OuterInput, Plan};
use dbs3_storage::{Catalog, HashIndex};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Bounded capacity of the plan cache (prepared + extended entries).
pub const PLAN_CACHE_CAPACITY: usize = 256;

/// Bounded capacity of the index cache, in fragment indexes. A paper-scale
/// query at degree 200 uses 200 entries; 1024 comfortably holds a handful
/// of live relations before LRU eviction starts.
pub const INDEX_CACHE_CAPACITY: usize = 1024;

/// Hit/miss/evict counters of one cache. Monotonic over the process
/// lifetime — consumers subtract snapshots to meter a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups answered from the cache (including awaited in-flight builds).
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Entries removed — stale generations and LRU capacity overflow alike.
    pub evictions: u64,
}

impl CacheCounters {
    /// Hits as a fraction of all lookups; 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// Snapshot of both query-setup caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Prepared-plan cache (expanded plans + schedules).
    pub plan: CacheCounters,
    /// Shared build-side hash-index cache.
    pub index: CacheCounters,
}

impl CacheStats {
    /// Counter-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            plan: self.plan.since(&earlier.plan),
            index: self.index.since(&earlier.index),
        }
    }
}

/// A fully expanded and scheduled plan, ready for repeated submission.
///
/// Holds everything [`Runtime::submit`](crate::Runtime::submit) needs that
/// does not depend on live query state: the plan, its extended view and the
/// execution schedule, plus the catalog generations they were derived from
/// (so staleness is a cheap per-relation comparison, not a re-expansion).
#[derive(Debug)]
pub struct PreparedPlan {
    plan: Plan,
    extended: Arc<ExtendedPlan>,
    schedule: ExecutionSchedule,
    generations: Vec<(String, u64)>,
    fingerprint: u64,
}

impl PreparedPlan {
    /// The simple-view plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The expanded (per-instance) view.
    pub fn extended(&self) -> &ExtendedPlan {
        &self.extended
    }

    /// The execution schedule built for the options this plan was prepared
    /// with.
    pub fn schedule(&self) -> &ExecutionSchedule {
        &self.schedule
    }

    /// The plan's structural content hash.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether every relation this preparation was derived from still has
    /// the same generation in `catalog`. A false return means the catalog
    /// mutated underneath: re-[`prepare`] (cheap — the cache evicts the
    /// stale entry and expands fresh).
    pub fn is_current(&self, catalog: &Catalog) -> bool {
        self.generations
            .iter()
            .all(|(name, generation)| catalog.generation(name) == Some(*generation))
    }
}

/// Key of a plan-cache entry: content hashes only, so equal-meaning inputs
/// collide onto one entry no matter how they were built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    plan: u64,
    options: u64,
}

/// What a plan-cache entry holds: a bare expansion (the `submit_with` path,
/// which receives an externally built schedule) or a full preparation.
#[derive(Debug, Clone)]
enum PlanValue {
    Extended(Arc<ExtendedPlan>),
    Prepared(Arc<PreparedPlan>),
}

#[derive(Debug)]
struct PlanEntry {
    generations: Vec<(String, u64)>,
    value: PlanValue,
    last_used: u64,
}

#[derive(Debug, Default)]
struct PlanCacheInner {
    entries: HashMap<PlanKey, PlanEntry>,
    counters: CacheCounters,
    tick: u64,
}

#[derive(Debug, Default)]
struct PlanCache {
    inner: Mutex<PlanCacheInner>,
}

impl PlanCache {
    /// Looks up `key`, validating the stored generations against `catalog`.
    /// A stale entry is evicted and reported as a miss.
    fn lookup(&self, key: PlanKey, catalog: &Catalog) -> Option<PlanValue> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&key) {
            Some(entry)
                if entry
                    .generations
                    .iter()
                    .all(|(name, generation)| catalog.generation(name) == Some(*generation)) =>
            {
                entry.last_used = tick;
                let value = entry.value.clone();
                inner.counters.hits += 1;
                Some(value)
            }
            Some(_) => {
                // Generation mismatch: the catalog mutated since this entry
                // was built. Evict immediately — stale entries must be
                // unreachable, not merely unlucky.
                inner.entries.remove(&key);
                inner.counters.evictions += 1;
                inner.counters.misses += 1;
                None
            }
            None => {
                inner.counters.misses += 1;
                None
            }
        }
    }

    fn insert(&self, key: PlanKey, generations: Vec<(String, u64)>, value: PlanValue) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            key,
            PlanEntry {
                generations,
                value,
                last_used: tick,
            },
        );
        while inner.entries.len() > PLAN_CACHE_CAPACITY {
            let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                break;
            };
            inner.entries.remove(&oldest);
            inner.counters.evictions += 1;
        }
    }
}

/// Key of an index-cache entry. The relation *generation* lives in the
/// entry, not the key, so a stale entry is found (and evicted) by the very
/// lookup that replaces it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct IndexKey {
    relation: String,
    column: usize,
    fragment: usize,
}

/// Rendezvous cell for a build in flight: the builder publishes here, and
/// concurrent requesters of the same fragment wait on it instead of
/// duplicating the build.
#[derive(Debug, Default)]
struct BuildCell {
    done: Mutex<BuildSlot>,
    ready: Condvar,
}

#[derive(Debug, Default)]
enum BuildSlot {
    #[default]
    Pending,
    Done(Arc<HashIndex>),
    /// The builder panicked (e.g. an injected fault). Waiters fall back to
    /// a private build — slower, never wrong.
    Failed,
}

#[derive(Debug)]
enum IndexState {
    Ready(Arc<HashIndex>),
    Building(Arc<BuildCell>),
}

#[derive(Debug)]
struct IndexEntry {
    generation: u64,
    state: IndexState,
    last_used: u64,
}

#[derive(Debug, Default)]
struct IndexCacheInner {
    entries: HashMap<IndexKey, IndexEntry>,
    counters: CacheCounters,
    tick: u64,
}

#[derive(Debug, Default)]
struct IndexCache {
    inner: Mutex<IndexCacheInner>,
}

/// What the locked lookup decided; acted on *after* the cache lock is
/// released so waiting and building never hold it.
enum IndexPlan {
    Hit(Arc<HashIndex>),
    Wait(Arc<BuildCell>),
    Build(Arc<BuildCell>),
}

impl IndexCache {
    fn plan_for(&self, key: &IndexKey, generation: u64) -> IndexPlan {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(key) {
            if entry.generation == generation {
                entry.last_used = tick;
                match &entry.state {
                    IndexState::Ready(index) => {
                        let index = Arc::clone(index);
                        inner.counters.hits += 1;
                        return IndexPlan::Hit(index);
                    }
                    IndexState::Building(cell) => {
                        // A build in flight counts as a hit: the work is
                        // shared, not repeated.
                        let cell = Arc::clone(cell);
                        inner.counters.hits += 1;
                        return IndexPlan::Wait(cell);
                    }
                }
            }
            // Stale generation — evict whatever was there (a stale build in
            // flight still publishes to its own cell; only the map entry
            // goes).
            inner.entries.remove(key);
            inner.counters.evictions += 1;
        }
        inner.counters.misses += 1;
        let cell = Arc::new(BuildCell::default());
        inner.entries.insert(
            key.clone(),
            IndexEntry {
                generation,
                state: IndexState::Building(Arc::clone(&cell)),
                last_used: tick,
            },
        );
        IndexPlan::Build(cell)
    }

    /// Blocks until the cell's build publishes.
    fn await_build(&self, cell: &BuildCell) -> Option<Arc<HashIndex>> {
        let mut slot = cell.done.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            match &*slot {
                BuildSlot::Pending => {
                    slot = cell.ready.wait(slot).unwrap_or_else(|p| p.into_inner());
                }
                BuildSlot::Done(index) => return Some(Arc::clone(index)),
                BuildSlot::Failed => return None,
            }
        }
    }

    /// Publishes a finished build: wakes waiters, flips the map entry to
    /// `Ready` and enforces the capacity bound.
    fn publish(&self, key: &IndexKey, cell: &Arc<BuildCell>, index: &Arc<HashIndex>) {
        {
            let mut slot = cell.done.lock().unwrap_or_else(|p| p.into_inner());
            *slot = BuildSlot::Done(Arc::clone(index));
        }
        cell.ready.notify_all();
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(key) {
            // Only flip the entry this build owns — a stale-eviction +
            // rebuild may have replaced it with a younger generation.
            if matches!(&entry.state, IndexState::Building(c) if Arc::ptr_eq(c, cell)) {
                entry.state = IndexState::Ready(Arc::clone(index));
                entry.last_used = tick;
            }
        }
        // LRU capacity bound; builds in flight are never evicted.
        while inner.entries.len() > INDEX_CACHE_CAPACITY {
            let Some(oldest) = inner
                .entries
                .iter()
                .filter(|(_, e)| matches!(e.state, IndexState::Ready(_)))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            inner.entries.remove(&oldest);
            inner.counters.evictions += 1;
        }
    }

    /// Marks a build failed (builder panicked): wakes waiters with the
    /// fallback signal and removes the map entry so the next requester
    /// starts a fresh build.
    fn abandon(&self, key: &IndexKey, cell: &Arc<BuildCell>) {
        {
            let mut slot = cell.done.lock().unwrap_or_else(|p| p.into_inner());
            *slot = BuildSlot::Failed;
        }
        cell.ready.notify_all();
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(entry) = inner.entries.get(key) {
            if matches!(&entry.state, IndexState::Building(c) if Arc::ptr_eq(c, cell)) {
                inner.entries.remove(key);
            }
        }
    }
}

/// Unwinds-safely publishes or abandons a build in flight.
struct BuildGuard<'a> {
    cache: &'a IndexCache,
    key: &'a IndexKey,
    cell: &'a Arc<BuildCell>,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.abandon(self.key, self.cell);
        }
    }
}

#[derive(Debug, Default)]
struct Caches {
    plan: PlanCache,
    index: IndexCache,
}

static CACHES: OnceLock<Caches> = OnceLock::new();

fn caches() -> &'static Caches {
    CACHES.get_or_init(Caches::default)
}

/// Snapshot of both caches' counters.
pub fn cache_stats() -> CacheStats {
    let caches = caches();
    let plan = {
        let inner = caches.plan.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.counters
    };
    let index = {
        let inner = caches.index.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.counters
    };
    CacheStats { plan, index }
}

/// Drops every cached entry (counters keep accumulating). Benchmarks call
/// this between tiers so retained scaled-tier indexes don't distort memory
/// or accidentally warm an unrelated measurement; builds in flight still
/// publish to their waiters.
pub fn clear_caches() {
    let caches = caches();
    {
        let mut inner = caches.plan.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.entries.clear();
    }
    {
        let mut inner = caches.index.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.entries.clear();
    }
}

/// A fired lookup fault means "pretend the cache is not there": the caller
/// computes privately, which can only cost time. Delay sleeps, panic
/// panics (containment is the caller's concern), error/drop bypass.
fn lookup_fault_bypasses() -> bool {
    match faults::hit(points::CACHE_LOOKUP) {
        None => false,
        Some(FaultAction::Delay(d)) => {
            std::thread::sleep(d);
            false
        }
        Some(FaultAction::Error) | Some(FaultAction::Drop) => true,
        Some(FaultAction::Panic) => {
            // allow-panic: injected fault — exercises the same containment
            // as a real panic at this point (worker catch_unwind / submit
            // path unwinding); faults may fail queries, never falsify them.
            panic!("fault injected: {}", points::CACHE_LOOKUP)
        }
    }
}

/// Build faults have nothing safe to "drop" or type as an error at this
/// depth — escalate everything but delay to a panic, exactly like
/// `engine.queue.push` (the worker's `catch_unwind` turns it into a typed
/// `WorkerPanicked`; waiters fall back to private builds).
fn honor_build_fault() {
    match faults::hit(points::CACHE_BUILD) {
        None => {}
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(_) => {
            // allow-panic: injected fault; error/drop escalate on purpose —
            // a silently skipped build has no typed-error channel here, and
            // the panic is contained into WorkerPanicked.
            panic!("fault injected: {}", points::CACHE_BUILD)
        }
    }
}

/// Fetches (or builds) the shared hash index of one relation fragment.
///
/// The first requester of a `(relation, column, fragment, generation)`
/// builds; concurrent requesters block on the build in flight; later
/// requesters clone the `Arc`. `build` runs *outside* every cache lock.
pub fn shared_index(
    relation: &str,
    generation: u64,
    column: usize,
    fragment: usize,
    build: impl FnOnce() -> HashIndex,
) -> Arc<HashIndex> {
    if lookup_fault_bypasses() {
        return Arc::new(build());
    }
    let key = IndexKey {
        relation: relation.to_string(),
        column,
        fragment,
    };
    let cache = &caches().index;
    match cache.plan_for(&key, generation) {
        IndexPlan::Hit(index) => index,
        IndexPlan::Wait(cell) => match cache.await_build(&cell) {
            Some(index) => index,
            // The shared build panicked; a private build keeps this query
            // correct (and the failed entry is already gone from the map).
            None => Arc::new(build()),
        },
        IndexPlan::Build(cell) => {
            let mut guard = BuildGuard {
                cache,
                key: &key,
                cell: &cell,
                armed: true,
            };
            honor_build_fault();
            let index = Arc::new(build());
            guard.armed = false;
            cache.publish(&key, &cell, &index);
            index
        }
    }
}

const EXTENDED_KIND: u64 = 0x45_58_54; // "EXT": keys bare expansions apart

fn write_cost(h: &mut ContentHasher, cost: &CostParameters) {
    h.write_f64(cost.scan_tuple);
    h.write_f64(cost.move_tuple);
    h.write_f64(cost.nested_loop_probe_per_inner_tuple);
    h.write_f64(cost.build_per_tuple);
    h.write_f64(cost.indexed_probe);
    h.write_f64(cost.store_tuple);
    h.write_f64(cost.queue_creation);
}

fn write_option_usize(h: &mut ContentHasher, v: Option<usize>) {
    match v {
        None => h.write_u64(0),
        Some(n) => {
            h.write_u64(1);
            h.write_usize(n);
        }
    }
}

/// Content hash of everything besides the plan that shapes a preparation:
/// the full scheduler options and the cost parameters.
fn options_hash(options: &SchedulerOptions, cost: &CostParameters) -> u64 {
    let mut h = ContentHasher::new();
    write_option_usize(&mut h, options.total_threads);
    h.write_usize(options.max_threads);
    h.write_f64(options.work_per_thread);
    h.write_usize(options.queue_capacity);
    h.write_usize(options.cache_size);
    h.write_u64(match options.strategy_override {
        None => 0,
        Some(crate::strategy::ConsumptionStrategy::Random) => 1,
        Some(crate::strategy::ConsumptionStrategy::Lpt) => 2,
    });
    h.write_f64(options.lpt_skew_threshold);
    h.write_u64(options.discard_results as u64);
    write_option_usize(&mut h, options.build_threads);
    write_option_usize(&mut h, options.morsel_rows);
    write_cost(&mut h, cost);
    h.finish()
}

/// Hash keying a bare expansion: plan + cost only (options don't influence
/// the extended view).
fn extended_hash(cost: &CostParameters) -> u64 {
    let mut h = ContentHasher::new();
    h.write_u64(EXTENDED_KIND);
    write_cost(&mut h, cost);
    h.finish()
}

/// The relations a plan reads, with their current catalog generations —
/// what a cache entry derived from this (plan, catalog) pair depends on.
fn referenced_generations(catalog: &Catalog, plan: &Plan) -> Vec<(String, u64)> {
    let mut names: Vec<&str> = Vec::new();
    for node in plan.nodes() {
        if let Some(rel) = node.kind.associated_relation() {
            names.push(rel);
        }
        if let OperatorKind::Join {
            outer: OuterInput::Fragment { relation },
            ..
        } = &node.kind
        {
            names.push(relation);
        }
    }
    names.sort_unstable();
    names.dedup();
    names
        .into_iter()
        .map(|name| (name.to_string(), catalog.generation(name).unwrap_or(0)))
        .collect()
}

/// Expands `plan` against `catalog`, answering repeats from the plan cache
/// (the `Runtime::submit` path, where the caller supplies its own
/// schedule).
pub fn cached_extended(
    catalog: &Catalog,
    plan: &Plan,
    cost: &CostParameters,
) -> Result<Arc<ExtendedPlan>> {
    let key = PlanKey {
        plan: plan.content_hash(),
        options: extended_hash(cost),
    };
    if lookup_fault_bypasses() {
        return Ok(Arc::new(ExtendedPlan::from_plan(plan, catalog, cost)?));
    }
    let cache = &caches().plan;
    if let Some(PlanValue::Extended(extended)) = cache.lookup(key, catalog) {
        return Ok(extended);
    }
    let extended = Arc::new(ExtendedPlan::from_plan(plan, catalog, cost)?);
    cache.insert(
        key,
        referenced_generations(catalog, plan),
        PlanValue::Extended(Arc::clone(&extended)),
    );
    Ok(extended)
}

/// Prepares a plan for execution: expansion + scheduling, answered from the
/// plan cache when this (plan, options, cost) shape was prepared before and
/// the referenced relations are unchanged.
pub fn prepare(
    catalog: &Catalog,
    plan: &Plan,
    options: &SchedulerOptions,
    cost: &CostParameters,
) -> Result<Arc<PreparedPlan>> {
    let fingerprint = plan.content_hash();
    let key = PlanKey {
        plan: fingerprint,
        options: options_hash(options, cost),
    };
    let bypass = lookup_fault_bypasses();
    let cache = &caches().plan;
    if !bypass {
        if let Some(PlanValue::Prepared(prepared)) = cache.lookup(key, catalog) {
            return Ok(prepared);
        }
    }
    // The bare expansion is shared with the `submit_with` path, so a
    // prepare() after a submit() (or vice versa) still reuses the
    // expensive half.
    let extended = cached_extended(catalog, plan, cost)?;
    let schedule = Scheduler::build(plan, &extended, options)?;
    let generations = referenced_generations(catalog, plan);
    let prepared = Arc::new(PreparedPlan {
        plan: plan.clone(),
        extended,
        schedule,
        generations: generations.clone(),
        fingerprint,
    });
    if !bypass {
        cache.insert(key, generations, PlanValue::Prepared(Arc::clone(&prepared)));
    }
    Ok(prepared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbs3_storage::{PartitionSpec, PartitionedRelation, WisconsinConfig, WisconsinGenerator};

    fn relation(name: &str, cardinality: usize, degree: usize) -> PartitionedRelation {
        let rel = WisconsinGenerator::new()
            .generate(&WisconsinConfig::narrow(name, cardinality))
            .unwrap();
        PartitionedRelation::from_relation(&rel, PartitionSpec::on("unique1", degree, 2)).unwrap()
    }

    fn catalog(a_card: usize, b_card: usize, degree: usize) -> Catalog {
        let mut cat = Catalog::new();
        cat.register(relation("A", a_card, degree)).unwrap();
        cat.register(relation("Bprime", b_card, degree)).unwrap();
        cat
    }

    fn fig14(cat: &Catalog) -> (Plan, u64) {
        let plan =
            dbs3_lera::plans::assoc_join("Bprime", "A", "unique1", dbs3_lera::JoinAlgorithm::Hash);
        let generation = cat.generation("A").unwrap();
        (plan, generation)
    }

    #[test]
    fn prepare_hits_on_repeat_and_misses_on_new_generations() {
        let cat = catalog(600, 60, 4);
        let (plan, _) = fig14(&cat);
        let options = SchedulerOptions::default().with_total_threads(2);
        let cost = CostParameters::default();

        let before = cache_stats();
        let first = prepare(&cat, &plan, &options, &cost).unwrap();
        let second = prepare(&cat, &plan, &options, &cost).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "repeat must share one entry");
        assert!(first.is_current(&cat));
        let after = cache_stats().since(&before);
        assert!(after.plan.hits >= 1, "{after:?}");

        // A mutated catalog makes the entry stale: fresh preparation, old
        // entry evicted.
        let mut mutated = cat.clone();
        mutated.replace(relation("A", 600, 4));
        assert!(!first.is_current(&mutated));
        let evictions_before = cache_stats().plan.evictions;
        let third = prepare(&mutated, &plan, &options, &cost).unwrap();
        assert!(!Arc::ptr_eq(&first, &third));
        assert!(cache_stats().plan.evictions > evictions_before);
    }

    #[test]
    fn distinct_options_get_distinct_entries() {
        let cat = catalog(500, 50, 4);
        let (plan, _) = fig14(&cat);
        let cost = CostParameters::default();
        let two = prepare(
            &cat,
            &plan,
            &SchedulerOptions::default().with_total_threads(2),
            &cost,
        )
        .unwrap();
        let four = prepare(
            &cat,
            &plan,
            &SchedulerOptions::default().with_total_threads(4),
            &cost,
        )
        .unwrap();
        assert!(!Arc::ptr_eq(&two, &four));
        assert_eq!(two.fingerprint(), four.fingerprint());
        assert_ne!(
            two.schedule().total_threads(),
            four.schedule().total_threads()
        );
    }

    #[test]
    fn shared_index_is_shared_and_invalidated_by_generation() {
        let cat = catalog(400, 40, 2);
        let rel = cat.get("A").unwrap();
        let generation = cat.generation("A").unwrap();
        let tuples = rel.fragments()[0].tuples();

        let before = cache_stats();
        let first = shared_index("A", generation, 0, 0, || HashIndex::build(tuples, 0));
        let again = shared_index("A", generation, 0, 0, || HashIndex::build(tuples, 0));
        assert!(Arc::ptr_eq(&first, &again), "one build, shared Arc");
        let delta = cache_stats().since(&before);
        assert!(
            delta.index.hits >= 1 && delta.index.misses >= 1,
            "{delta:?}"
        );

        // A different generation never sees the old build.
        let fresh = shared_index("A", generation + 1_000_000, 0, 0, || {
            HashIndex::build(tuples, 0)
        });
        assert!(!Arc::ptr_eq(&first, &fresh));
    }

    #[test]
    fn concurrent_requesters_share_one_build() {
        let cat = catalog(2_000, 40, 2);
        let rel = cat.get("A").unwrap();
        // A private generation namespace far away from real ones keeps this
        // test independent of everything else in the process.
        let generation = u64::MAX - 7;
        let threads = 8;
        let built = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let indexes: Vec<Arc<HashIndex>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let rel = Arc::clone(&rel);
                    let built = Arc::clone(&built);
                    scope.spawn(move || {
                        shared_index("concurrent-test", generation, 0, 0, || {
                            // ordering: Relaxed — test-only tally of how many
                            // closures ran; no ordering dependencies.
                            built.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            // Slow the build down so contenders really race.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            HashIndex::build(rel.fragments()[0].tuples(), 0)
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            built.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "first requester builds, everyone else waits or clones"
        );
        for index in &indexes {
            assert!(Arc::ptr_eq(index, &indexes[0]));
        }
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        // Drive more distinct fragments than the capacity through a private
        // relation name; the map must stay bounded.
        let cat = catalog(200, 20, 2);
        let rel = cat.get("A").unwrap();
        let tuples = rel.fragments()[0].tuples();
        let generation = u64::MAX - 99;
        let before = cache_stats().index.evictions;
        for fragment in 0..(INDEX_CACHE_CAPACITY + 8) {
            let _ = shared_index("lru-test", generation, 0, fragment, || {
                HashIndex::build(tuples, 0)
            });
        }
        let inner = caches().index.inner.lock().unwrap();
        assert!(inner.entries.len() <= INDEX_CACHE_CAPACITY);
        drop(inner);
        assert!(cache_stats().index.evictions > before);
    }

    #[test]
    fn cached_extended_shares_and_respects_cost_parameters() {
        let cat = catalog(300, 30, 2);
        let (plan, _) = fig14(&cat);
        let cost = CostParameters::default();
        let a = cached_extended(&cat, &plan, &cost).unwrap();
        let b = cached_extended(&cat, &plan, &cost).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let other_cost = CostParameters {
            scan_tuple: cost.scan_tuple * 2.0,
            ..cost
        };
        let c = cached_extended(&cat, &plan, &other_cost).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "cost parameters key the expansion");
    }
}
