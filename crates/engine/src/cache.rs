//! Producer-side internal activation cache.
//!
//! "There is an internal cache mechanism for activations in order to reduce
//! interference between activation producers and consumers, and to increase
//! locality of access" (Section 3, Figure 4). Instead of taking the consumer
//! queue's lock for every produced tuple, a producing thread buffers outgoing
//! data activations per destination queue and flushes whole batches.

use crate::activation::Activation;
use crate::queue::ActivationQueue;
use std::sync::Arc;

/// A per-thread cache of outgoing activations, one buffer per destination
/// queue of the consumer operation.
#[derive(Debug)]
pub struct OutputCache {
    /// Destination queues (the consumer operation's queues, indexed by
    /// instance).
    destinations: Vec<Arc<ActivationQueue>>,
    /// Buffered activations per destination.
    buffers: Vec<Vec<Activation>>,
    /// Flush threshold (the paper's `CacheSize`).
    cache_size: usize,
    /// Number of flushes performed (metrics: how much lock traffic the cache
    /// saved).
    flushes: u64,
    /// Number of activations that went through the cache.
    produced: u64,
}

impl OutputCache {
    /// Creates a cache in front of the given destination queues.
    pub fn new(destinations: Vec<Arc<ActivationQueue>>, cache_size: usize) -> Self {
        let buffers = destinations.iter().map(|_| Vec::new()).collect();
        OutputCache {
            destinations,
            buffers,
            cache_size: cache_size.max(1),
            flushes: 0,
            produced: 0,
        }
    }

    /// Number of destination queues.
    pub fn destination_count(&self) -> usize {
        self.destinations.len()
    }

    /// Buffers one activation for `destination`, flushing that buffer if it
    /// reached the cache size.
    pub fn produce(&mut self, destination: usize, activation: Activation) {
        self.produced += 1;
        self.buffers[destination].push(activation);
        if self.buffers[destination].len() >= self.cache_size {
            self.flush_one(destination);
        }
    }

    /// Flushes a single destination buffer.
    fn flush_one(&mut self, destination: usize) {
        if self.buffers[destination].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.buffers[destination]);
        self.destinations[destination].push_batch(batch);
        self.flushes += 1;
    }

    /// Flushes every non-empty buffer (called when a thread finishes
    /// processing, so no activation is ever stranded in the cache).
    pub fn flush_all(&mut self) {
        for d in 0..self.buffers.len() {
            self.flush_one(d);
        }
    }

    /// Number of batch flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Number of activations produced through this cache.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Number of activations currently buffered (not yet visible to
    /// consumers).
    pub fn buffered(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbs3_storage::tuple::int_tuple;

    fn queues(n: usize, capacity: usize) -> Vec<Arc<ActivationQueue>> {
        (0..n)
            .map(|i| Arc::new(ActivationQueue::new(i, capacity, 0.0)))
            .collect()
    }

    #[test]
    fn flushes_when_cache_size_reached() {
        let qs = queues(2, 64);
        let mut cache = OutputCache::new(qs.clone(), 4);
        for i in 0..3 {
            cache.produce(0, Activation::Data(int_tuple(&[i])));
        }
        assert_eq!(qs[0].len(), 0, "below threshold: nothing flushed yet");
        assert_eq!(cache.buffered(), 3);
        cache.produce(0, Activation::Data(int_tuple(&[3])));
        assert_eq!(qs[0].len(), 4, "threshold reached: batch flushed");
        assert_eq!(cache.flushes(), 1);
    }

    #[test]
    fn flush_all_empties_every_buffer() {
        let qs = queues(3, 64);
        let mut cache = OutputCache::new(qs.clone(), 100);
        cache.produce(0, Activation::Trigger);
        cache.produce(1, Activation::Trigger);
        cache.produce(2, Activation::Trigger);
        cache.flush_all();
        assert_eq!(cache.buffered(), 0);
        assert!(qs.iter().all(|q| q.len() == 1));
        assert_eq!(cache.produced(), 3);
    }

    #[test]
    fn flush_all_on_empty_cache_is_a_noop() {
        let qs = queues(2, 8);
        let mut cache = OutputCache::new(qs, 4);
        cache.flush_all();
        assert_eq!(cache.flushes(), 0);
    }

    #[test]
    fn cache_size_one_degenerates_to_direct_push() {
        let qs = queues(1, 8);
        let mut cache = OutputCache::new(qs.clone(), 1);
        cache.produce(0, Activation::Trigger);
        cache.produce(0, Activation::Trigger);
        assert_eq!(qs[0].len(), 2);
        assert_eq!(cache.flushes(), 2);
        assert_eq!(cache.destination_count(), 1);
    }
}
