#!/usr/bin/env python3
"""Schema check for dbs3 benchmark JSON documents.

Usage:
    python3 tools/check_bench_schema.py PATH [--mode full|serve-only]

Modes:
    full        (default) a complete `BENCH_engine.json`: engine tiers,
                multi-query concurrency levels, one repeated-submit row per
                tier (with explicit per-cache warm hit/miss counts and a
                warm hit rate of at least 0.9), and the serve tier at
                1/8/64 clients.
    serve-only  the standalone document `serve_bench --out` writes: just a
                `serve` array with at least one row.

The serve-tier rows are validated strictly in both modes: every row must
carry all latency percentile keys (p50_ms/p95_ms/p99_ms) and explicit
`shed_requests`/`retried`/`deadline_exceeded`/`gave_up` counts — a row
that omits them is rejected, because a missing count is not the same as a
measured zero. The outcome accounting must be total:
`ok + deadline_exceeded + gave_up + protocol_errors == requests`.
"""

import json
import sys

SCHEMA_VERSION = 4

REPEAT_KEYS = (
    "workload",
    "scale",
    "pool_threads",
    "submits",
    "cold_s",
    "warm_avg_s",
    "warm_best_s",
    "warm_speedup",
    "warm_plan_hits",
    "warm_plan_misses",
    "warm_index_hits",
    "warm_index_misses",
    "warm_hit_rate",
)

SERVE_KEYS = (
    "scale",
    "clients",
    "queries_per_client",
    "requests",
    "ok",
    "shed_requests",
    "retried",
    "deadline_exceeded",
    "gave_up",
    "protocol_errors",
    "workers",
    "max_inflight",
    "elapsed_s",
    "queries_per_second",
    "p50_ms",
    "p95_ms",
    "p99_ms",
)

SCALES = ("paper", "smoke", "scaled", "scaled_smoke")


def fail(msg):
    print(f"schema check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def check_serve_rows(rows, expect_client_levels=None):
    if not isinstance(rows, list) or not rows:
        fail("serve tier must be a non-empty array")
    for row in rows:
        missing = [k for k in SERVE_KEYS if k not in row]
        if missing:
            fail(f"serve row is missing keys {missing}: {row}")
        if row["scale"] not in SCALES:
            fail(f"serve row has unknown scale {row['scale']!r}")
        for key in ("clients", "queries_per_client", "requests", "ok"):
            if not isinstance(row[key], int) or row[key] < 0:
                fail(f"serve row {key} must be a non-negative int: {row}")
        # Explicit robustness accounting: integers, never null/absent.
        for key in ("shed_requests", "retried", "deadline_exceeded", "gave_up"):
            if not isinstance(row[key], int) or row[key] < 0:
                fail(f"serve row {key} must be an explicit count: {row}")
        if row["protocol_errors"] != 0:
            fail(f"serve row recorded protocol errors: {row}")
        if row["requests"] != row["clients"] * row["queries_per_client"]:
            fail(f"serve row requests != clients * queries_per_client: {row}")
        # Total outcome accounting: every request ended exactly one way.
        # (Sheds are retry *causes*, not outcomes — a shed request is
        # retried by the self-healing client until it succeeds or the
        # budget runs dry, so it lands in ok or gave_up.)
        outcomes = (
            row["ok"]
            + row["deadline_exceeded"]
            + row["gave_up"]
            + row["protocol_errors"]
        )
        if outcomes != row["requests"]:
            fail(
                "serve row ok + deadline_exceeded + gave_up + protocol_errors "
                f"!= requests: {row}"
            )
        if row["ok"] > 0:
            if not (0.0 < row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]):
                fail(f"serve row percentiles are not monotone: {row}")
            if row["queries_per_second"] <= 0.0:
                fail(f"serve row queries_per_second must be positive: {row}")
    if expect_client_levels is not None:
        levels = [row["clients"] for row in rows]
        if levels != expect_client_levels:
            fail(f"serve client levels {levels} != expected {expect_client_levels}")


def check_repeat_rows(rows, expect_tiers):
    if not isinstance(rows, list) or len(rows) != expect_tiers:
        fail(f"expected {expect_tiers} repeat tiers, got {len(rows or [])}")
    for row in rows:
        missing = [k for k in REPEAT_KEYS if k not in row]
        if missing:
            fail(f"repeat row is missing keys {missing}: {row}")
        if row["scale"] not in SCALES:
            fail(f"repeat row has unknown scale {row['scale']!r}")
        if not isinstance(row["submits"], int) or row["submits"] < 2:
            fail(f"repeat row needs one cold and one warm submit: {row}")
        # Cache counts are explicit integers: a zero miss count is a
        # measurement, not an omission.
        for key in (
            "warm_plan_hits",
            "warm_plan_misses",
            "warm_index_hits",
            "warm_index_misses",
        ):
            if not isinstance(row[key], int) or row[key] < 0:
                fail(f"repeat row {key} must be an explicit count: {row}")
        if row["cold_s"] <= 0.0 or row["warm_avg_s"] <= 0.0:
            fail(f"repeat row latencies must be positive: {row}")
        if not 0.0 <= row["warm_hit_rate"] <= 1.0:
            fail(f"repeat row warm_hit_rate out of range: {row}")
        # The warm window repeats a plan the cold submit just cached
        # against an unchanged catalog; the committed record must show the
        # caches actually serving it.
        if row["warm_hit_rate"] < 0.9:
            fail(f"repeat row warm_hit_rate below 0.9: {row}")


def check_full(doc):
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"schema_version {doc.get('schema_version')!r} != {SCHEMA_VERSION}")
    if not isinstance(doc.get("host_cpus"), int) or doc["host_cpus"] < 1:
        fail(f"host_cpus invalid: {doc.get('host_cpus')!r}")
    tiers = doc.get("tiers")
    if not isinstance(tiers, list) or len(tiers) != 2:
        fail(f"expected 2 tiers, got {[t.get('scale') for t in tiers or []]}")
    for tier in tiers:
        if tier["scale"] not in SCALES:
            fail(f"unknown tier scale {tier['scale']!r}")
        if len(tier["runs"]) != 6:
            fail(f"tier {tier['scale']} has {len(tier['runs'])} runs, expected 6")
        shapes = {r["shape"] for r in tier["runs"]}
        if {s["shape"] for s in tier["speedups"]} != shapes:
            fail(f"tier {tier['scale']} speedup shapes do not match runs")
        for s in tier["speedups"]:
            if s["speedup_4t"] <= 0 or s["speedup_8t"] <= 0:
                fail(f"non-positive speedup in tier {tier['scale']}: {s}")
    concurrent = doc.get("concurrent")
    # One entry per (tier, concurrency level): both tiers x 1/4/16.
    if not isinstance(concurrent, list) or len(concurrent) != 6:
        fail(f"expected 6 concurrent levels, got {len(concurrent or [])}")
    by_scale = {}
    for c in concurrent:
        by_scale.setdefault(c["scale"], []).append(c["queries"])
    if len(by_scale) != 2 or any(v != [1, 4, 16] for v in by_scale.values()):
        fail(f"concurrent levels wrong: {by_scale}")
    if "repeat" not in doc:
        fail("document has no repeat tier")
    check_repeat_rows(doc["repeat"], expect_tiers=2)
    if "serve" not in doc:
        fail("document has no serve tier")
    check_serve_rows(doc["serve"], expect_client_levels=[1, 8, 64])


def check_serve_only(doc):
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"schema_version {doc.get('schema_version')!r} != {SCHEMA_VERSION}")
    if "serve" not in doc:
        fail("document has no serve array")
    check_serve_rows(doc["serve"])


def main():
    argv = sys.argv[1:]
    mode = "full"
    if "--mode" in argv:
        i = argv.index("--mode")
        try:
            mode = argv[i + 1]
        except IndexError:
            fail("--mode expects a value")
        del argv[i : i + 2]
    if len(argv) != 1 or mode not in ("full", "serve-only"):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    try:
        with open(argv[0]) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {argv[0]}: {e}")
    if mode == "full":
        check_full(doc)
    else:
        check_serve_only(doc)
    print(f"{argv[0]}: schema OK ({mode})")


if __name__ == "__main__":
    main()
